//! Minimum Execution Time (MET) — paper §3.4, Figure 8.
//!
//! Walk the task list in its given order; assign each task to the machine
//! with the smallest **ETC value** (execution time), ignoring machine loads
//! entirely. MET is the fastest heuristic but can overload the globally
//! fastest machine.
//!
//! The paper proves (§3.4) that with deterministic tie-breaking the MET
//! mapping never changes across iterations of the iterative technique: the
//! MET machine of a task depends only on its ETC row, which the technique
//! never alters (it only removes machines, and a removed non-makespan
//! machine was never the task's MET machine... for tasks that survive).
//! With *random* tie-breaking the paper's §3.4 example shows the makespan
//! can increase.

use hcs_core::{Heuristic, Instance, MapWorkspace, Mapping, TieBreaker};

/// The MET heuristic (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct Met;

impl Heuristic for Met {
    fn name(&self) -> &'static str {
        "MET"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_with(inst, tb, &mut MapWorkspace::new())
    }

    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        // MET never reads ready times, but `begin` is what sizes the
        // candidate buffer, and it keeps the workspace in a coherent state
        // for whoever uses it next.
        ws.begin(inst);
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        for &task in inst.tasks {
            let (cands, _) = ws.min_etc_candidates(inst, task);
            let machine = cands[tb.pick(cands.len())];
            ws.trace_commit(task, machine);
            mapping
                .assign(task, machine)
                .expect("task list contains no duplicates");
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, Scenario};

    fn run(etc: EtcMatrix, tb: &mut TieBreaker) -> Mapping {
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        Met.map(&owned.as_instance(&s), tb)
    }

    #[test]
    fn picks_minimum_execution_machine_regardless_of_load() {
        // Both tasks have their smallest ETC on m0; MET piles both on it.
        let etc = EtcMatrix::from_rows(&[vec![1.0, 9.0], vec![1.0, 9.0]]).unwrap();
        let map = run(etc, &mut TieBreaker::Deterministic);
        assert_eq!(map.machine_of(t(0)), Some(m(0)));
        assert_eq!(map.machine_of(t(1)), Some(m(0)));
    }

    #[test]
    fn ignores_initial_ready_times() {
        // m0 is heavily pre-loaded but still the MET machine.
        let etc = EtcMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let s = Scenario::with_ready(etc, hcs_core::ReadyTimes::from_values(&[100.0, 0.0]));
        let owned = s.full_instance();
        let map = Met.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        assert_eq!(map.machine_of(t(0)), Some(m(0)));
    }

    #[test]
    fn deterministic_tie_takes_lowest_machine_index() {
        let etc = EtcMatrix::from_rows(&[vec![5.0, 3.0, 3.0]]).unwrap();
        let map = run(etc, &mut TieBreaker::Deterministic);
        assert_eq!(map.machine_of(t(0)), Some(m(1)));
    }

    #[test]
    fn random_tie_eventually_picks_both() {
        let etc = EtcMatrix::from_rows(&[vec![5.0, 3.0, 3.0]]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32 {
            let map = run(etc.clone(), &mut TieBreaker::random(seed));
            seen.insert(map.machine_of(t(0)).unwrap());
        }
        assert_eq!(seen.len(), 2, "both tied machines should occur");
        assert!(!seen.contains(&m(0)));
    }

    #[test]
    fn respects_active_machine_set() {
        let etc = EtcMatrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let tasks = vec![t(0)];
        let machines = vec![m(1), m(2)]; // m0 removed
        let inst = Instance {
            etc: &s.etc,
            tasks: &tasks,
            machines: &machines,
            ready: &s.initial_ready,
            objective: s.objective,
        };
        let map = Met.map(&inst, &mut TieBreaker::Deterministic);
        assert_eq!(map.machine_of(t(0)), Some(m(1)));
    }

    #[test]
    fn assignment_order_follows_task_list() {
        let etc = EtcMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let map = run(etc, &mut TieBreaker::Deterministic);
        let order: Vec<_> = map.order().iter().map(|&(task, _)| task).collect();
        assert_eq!(order, vec![t(0), t(1), t(2)]);
    }
}
