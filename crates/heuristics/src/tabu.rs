//! Tabu Search — the Braun et al. \[3\] baseline configuration.
//!
//! A solution is a complete mapping. The search alternates:
//!
//! * **short hops** — first-improvement hill climbing over the
//!   single-task-reassignment neighbourhood, sweeping (task, machine)
//!   pairs in canonical order until a full sweep yields no improvement;
//! * **long hops** — when a local optimum is reached, its mapping is added
//!   to the tabu list and the search restarts from a random mapping that
//!   differs from every tabu entry, forcing unexplored regions.
//!
//! The best mapping over all hops wins. Stopping: a budget on total
//! (short + long) hops. Deterministic per seed.

use hcs_core::{Heuristic, Instance, LoadTracker, Mapping, TieBreaker, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Tuning parameters for [`Tabu`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TabuConfig {
    /// Total hop budget (each accepted short hop and each long hop counts).
    pub max_hops: usize,
    /// Cap on stored tabu mappings (oldest-insertion eviction is skipped —
    /// the set simply stops growing, matching Braun et al.'s fixed list).
    pub tabu_capacity: usize,
    /// Give up on finding a non-tabu random restart after this many draws.
    pub restart_attempts: usize,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig {
            max_hops: 2_000,
            tabu_capacity: 64,
            restart_attempts: 32,
        }
    }
}

/// The Tabu Search mapper.
#[derive(Clone, Debug)]
pub struct Tabu {
    config: TabuConfig,
    rng: StdRng,
}

impl Tabu {
    /// A Tabu instance with default configuration.
    pub fn new(seed: u64) -> Self {
        Tabu::with_config(seed, TabuConfig::default())
    }

    /// A Tabu instance with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when `max_hops == 0`.
    pub fn with_config(seed: u64, config: TabuConfig) -> Self {
        assert!(config.max_hops > 0, "hop budget must be positive");
        Tabu {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Tabu {
    /// [`map`](Heuristic::map) with an observer called on every fresh
    /// state — the initial mapping, each accepted short hop, and each
    /// long-hop restart — receiving the assignment (machine index per task
    /// position), the tracked loads, and the current objective value (the
    /// makespan under [`hcs_core::Objective::Makespan`]). Testing seam for
    /// the golden-equivalence and load-drift property suites; the observer
    /// is outside the RNG stream.
    pub fn map_observed(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        observe: impl FnMut(&[usize], &[Time], Time),
    ) -> Mapping {
        self.map_observed_from(inst, tb, None, observe)
    }

    /// [`map_observed`](Tabu::map_observed) with an explicit start state:
    /// when `initial` is `Some`, the search starts its first short-hop
    /// sweep from that assignment (machine index per task position) instead
    /// of a random one — the adoption seam for the multi-restart driver.
    /// `None` runs the exact instruction (and RNG) sequence of
    /// [`map_observed`], which delegates here.
    pub fn map_observed_from(
        &mut self,
        inst: &Instance<'_>,
        _tb: &mut TieBreaker,
        initial: Option<&[usize]>,
        mut observe: impl FnMut(&[usize], &[Time], Time),
    ) -> Mapping {
        let n_tasks = inst.tasks.len();
        let n_machines = inst.machines.len();
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        if n_tasks == 0 {
            return mapping;
        }

        let mut assign: Vec<usize> = match initial {
            Some(start) => {
                debug_assert_eq!(start.len(), n_tasks, "start state covers the instance");
                start.to_vec()
            }
            None => (0..n_tasks)
                .map(|_| self.rng.gen_range(0..n_machines))
                .collect(),
        };
        // The delta-evaluation kernel: each candidate of the sweep below is
        // probed read-only — O(1) for most makespan moves via the hinted
        // probe, O(log m) tree / O(m) flat otherwise — instead of the old
        // write-scan-restore over all m machines.
        let mut tracker = LoadTracker::new();
        tracker.rebuild(inst, &assign);
        let mut current = tracker.objective_value();
        let mut best = current;
        let mut best_assign = assign.clone();
        let mut tabu: HashSet<Vec<usize>> = HashSet::new();
        let mut hops = 0usize;
        observe(&assign, tracker.loads(), current);

        'search: while hops < self.config.max_hops {
            // --- Short hops: first-improvement sweeps ---------------------
            loop {
                let mut improved = false;
                'sweep: for pos in 0..n_tasks {
                    let old_mi = assign[pos];
                    let task = inst.tasks[pos];
                    for mi in 0..n_machines {
                        if mi == old_mi {
                            continue;
                        }
                        let sub = inst.etc.get(task, inst.machines[old_mi]);
                        let add = inst.etc.get(task, inst.machines[mi]);
                        let candidate = tracker.probe_objective_hint(old_mi, sub, mi, add, current);
                        if candidate < current {
                            tracker.apply(old_mi, sub, mi, add);
                            assign[pos] = mi;
                            current = candidate;
                            improved = true;
                            hops += 1;
                            if current < best {
                                best = current;
                                best_assign.clone_from(&assign);
                            }
                            observe(&assign, tracker.loads(), current);
                            if hops >= self.config.max_hops {
                                break 'search;
                            }
                            break 'sweep;
                        }
                    }
                }
                if !improved {
                    break;
                }
            }

            // --- Local optimum: record and long-hop -----------------------
            if tabu.len() < self.config.tabu_capacity {
                tabu.insert(assign.clone());
            }
            let mut restarted = false;
            for _ in 0..self.config.restart_attempts {
                let candidate: Vec<usize> = (0..n_tasks)
                    .map(|_| self.rng.gen_range(0..n_machines))
                    .collect();
                if !tabu.contains(&candidate) {
                    assign = candidate;
                    tracker.rebuild(inst, &assign);
                    current = tracker.objective_value();
                    hops += 1;
                    restarted = true;
                    if current < best {
                        best = current;
                        best_assign.clone_from(&assign);
                    }
                    observe(&assign, tracker.loads(), current);
                    break;
                }
            }
            if !restarted {
                break; // the space is saturated with tabu entries
            }
        }

        for (pos, &mi) in best_assign.iter().enumerate() {
            mapping
                .assign(inst.tasks[pos], inst.machines[mi])
                .expect("each position assigned once");
        }
        mapping
    }
}

impl Heuristic for Tabu {
    fn name(&self) -> &'static str {
        "Tabu"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_observed(inst, tb, |_, _, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, Scenario};

    fn scenario() -> Scenario {
        Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![4.0, 7.0, 2.0],
                vec![3.0, 1.0, 9.0],
                vec![5.0, 5.0, 5.0],
                vec![2.0, 8.0, 6.0],
                vec![7.0, 3.0, 4.0],
                vec![6.0, 2.0, 8.0],
            ])
            .unwrap(),
        )
    }

    fn run(t: &mut Tabu, s: &Scenario) -> Mapping {
        let owned = s.full_instance();
        t.map(&owned.as_instance(s), &mut TieBreaker::Deterministic)
    }

    #[test]
    fn produces_valid_complete_mapping() {
        let s = scenario();
        let map = run(&mut Tabu::new(1), &s);
        map.validate(&s.etc.task_vec(), &s.etc.machine_vec())
            .unwrap();
        assert_eq!(map.len(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = scenario();
        assert_eq!(
            run(&mut Tabu::new(9), &s).order(),
            run(&mut Tabu::new(9), &s).order()
        );
    }

    #[test]
    fn finds_the_optimum_on_the_small_instance() {
        let s = scenario();
        let machines = s.etc.machine_vec();
        // Brute force 3^6.
        let mut optimum: Option<Time> = None;
        for code in 0..3usize.pow(6) {
            let mut c = code;
            let mut loads = [Time::ZERO; 3];
            for task in s.etc.tasks() {
                let mi = c % 3;
                c /= 3;
                loads[mi] += s.etc.get(task, machines[mi]);
            }
            let ms = loads.into_iter().max().unwrap();
            if optimum.is_none_or(|b| ms < b) {
                optimum = Some(ms);
            }
        }
        let tabu = run(&mut Tabu::new(4), &s).makespan(&s.etc, &s.initial_ready, &machines);
        assert_eq!(Some(tabu), optimum);
    }

    #[test]
    fn hop_budget_is_respected_cheaply() {
        let s = scenario();
        let mut tiny = Tabu::with_config(
            0,
            TabuConfig {
                max_hops: 1,
                ..Default::default()
            },
        );
        // One hop still yields a full valid mapping.
        let map = run(&mut tiny, &s);
        assert_eq!(map.len(), 6);
    }

    #[test]
    fn empty_task_set_is_fine() {
        let s = scenario();
        let machines = s.etc.machine_vec();
        let inst = Instance {
            etc: &s.etc,
            tasks: &[],
            machines: &machines,
            ready: &s.initial_ready,
            objective: s.objective,
        };
        assert!(Tabu::new(0)
            .map(&inst, &mut TieBreaker::Deterministic)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "hop budget")]
    fn zero_budget_rejected() {
        let _ = Tabu::with_config(
            0,
            TabuConfig {
                max_hops: 0,
                ..Default::default()
            },
        );
    }
}
