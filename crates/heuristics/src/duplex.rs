//! Duplex — baseline from Braun et al. \[3\].
//!
//! Runs Min-Min and Max-Min on the same instance and keeps whichever
//! mapping has the smaller objective value — the makespan in the paper's
//! setting (Min-Min on a tie). Duplex exploits the fact that each of the
//! two two-phase heuristics dominates in different workload regimes for
//! roughly twice the cost.

use hcs_core::{Heuristic, Instance, MapWorkspace, Mapping, TieBreaker};

use crate::{MaxMin, MinMin};

/// The Duplex heuristic (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct Duplex;

impl Heuristic for Duplex {
    fn name(&self) -> &'static str {
        "Duplex"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_with(inst, tb, &mut MapWorkspace::new())
    }

    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        // Both sub-runs share the workspace sequentially and, crucially,
        // the same tie-breaker stream: Min-Min consumes its picks first,
        // exactly as in the naive reference.
        let minmin = MinMin.map_with(inst, tb, ws);
        let maxmin = MaxMin.map_with(inst, tb, ws);
        let ms_min = minmin.objective_value(inst.etc, inst.ready, inst.machines, inst.objective);
        let ms_max = maxmin.objective_value(inst.etc, inst.ready, inst.machines, inst.objective);
        if ms_max < ms_min {
            maxmin
        } else {
            minmin
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, Scenario, Time};

    fn makespan(s: &Scenario, h: &mut dyn Heuristic) -> Time {
        let owned = s.full_instance();
        let map = h.map(&owned.as_instance(s), &mut TieBreaker::Deterministic);
        map.makespan(&s.etc, &s.initial_ready, &owned.machines)
    }

    #[test]
    fn never_worse_than_either_parent() {
        // A workload where Max-Min wins (one long, many short)...
        let s1 = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![10.0, 10.0], vec![2.0, 2.0], vec![2.0, 2.0]]).unwrap(),
        );
        // ...and one where Min-Min wins (uniformly small tasks).
        let s2 = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![1.0, 4.0],
                vec![4.0, 1.0],
                vec![1.0, 4.0],
                vec![4.0, 1.0],
            ])
            .unwrap(),
        );
        for s in [&s1, &s2] {
            let d = makespan(s, &mut Duplex);
            let mn = makespan(s, &mut MinMin);
            let mx = makespan(s, &mut MaxMin);
            assert!(d <= mn && d <= mx, "duplex {d} vs minmin {mn}, maxmin {mx}");
        }
        // And it actually picks the different winner in each case.
        assert_eq!(makespan(&s1, &mut Duplex), makespan(&s1, &mut MaxMin));
        assert!(makespan(&s1, &mut MinMin) > makespan(&s1, &mut MaxMin));
    }

    #[test]
    fn tie_keeps_minmin_mapping() {
        let s = Scenario::with_zero_ready(EtcMatrix::from_rows(&[vec![3.0, 3.0]]).unwrap());
        let owned = s.full_instance();
        let d = Duplex.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        let mn = MinMin.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        assert_eq!(d.order(), mn.order());
    }
}
