//! Beam search — a bounded best-first tree search over partial mappings,
//! the practical stand-in for Braun et al.'s A\* baseline (which grows an
//! identical tree but prunes to a fixed node budget; a constant-width beam
//! is the standard memory-bounded variant).
//!
//! Nodes at depth `d` have the first `d` tasks (in task-list order)
//! assigned. Each level expands every beam node across all machines and
//! keeps the best `width` children ranked by
//!
//! ```text
//! f(node) = max(g(node), h(node))
//! g = current partial makespan
//! h = max over unassigned tasks of (min load + min ETC)  — an admissible
//!     bound: some machine must run each remaining task, and it cannot
//!     start before the currently least-loaded machine frees up... in fact
//!     we use the weaker, safe bound  max_t min_m (load_m + ETC(t, m)),
//!     the best completion time any remaining task could still achieve.
//! ```
//!
//! With unbounded width this explores the full tree (exact); the default
//! width trades optimality for polynomial cost, like Braun's pruned A\*.
//!
//! Beam search always ranks by **makespan**, whatever the instance's
//! [`hcs_core::Objective`]: its admissible bound `h` is a completion-time
//! bound, and no analogous cheap bound exists for the sum objectives. It
//! is an extension baseline outside the paper's study set, so it keeps
//! its native objective rather than pretending to optimize another.

use hcs_core::{Heuristic, Instance, Mapping, TieBreaker, Time};
use serde::{Deserialize, Serialize};

/// Tuning parameters for [`BeamSearch`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeamConfig {
    /// Beam width: surviving nodes per level.
    pub width: usize,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig { width: 64 }
    }
}

/// The beam-search mapper (deterministic — no RNG, no tie-break calls:
/// ranking ties are resolved by expansion order, which is canonical).
#[derive(Copy, Clone, Debug, Default)]
pub struct BeamSearch {
    /// Search parameters.
    pub config: BeamConfig,
}

impl BeamSearch {
    /// A beam search with the given width.
    ///
    /// # Panics
    ///
    /// Panics when `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "beam width must be positive");
        BeamSearch {
            config: BeamConfig { width },
        }
    }
}

#[derive(Clone)]
struct Node {
    assign: Vec<u16>,
    loads: Vec<Time>,
    g: Time,
}

impl Heuristic for BeamSearch {
    fn name(&self) -> &'static str {
        "Beam"
    }

    fn map(&mut self, inst: &Instance<'_>, _tb: &mut TieBreaker) -> Mapping {
        let n_tasks = inst.tasks.len();
        let n_machines = inst.machines.len();
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        if n_tasks == 0 {
            return mapping;
        }

        let root = Node {
            assign: Vec::new(),
            loads: inst.machines.iter().map(|&m| inst.ready.get(m)).collect(),
            g: inst
                .machines
                .iter()
                .map(|&m| inst.ready.get(m))
                .max()
                .expect("non-empty machine set"),
        };
        let mut beam = vec![root];

        for depth in 0..n_tasks {
            let mut children: Vec<(Time, Node)> = Vec::with_capacity(beam.len() * n_machines);
            for node in &beam {
                let task = inst.tasks[depth];
                for mi in 0..n_machines {
                    let mut loads = node.loads.clone();
                    loads[mi] += inst.etc.get(task, inst.machines[mi]);
                    let g = node.g.max(loads[mi]);
                    // Admissible completion bound over remaining tasks.
                    let mut h = g;
                    for &future in &inst.tasks[depth + 1..] {
                        let best_ct = (0..n_machines)
                            .map(|j| loads[j] + inst.etc.get(future, inst.machines[j]))
                            .min()
                            .expect("non-empty machine set");
                        h = h.max(best_ct);
                    }
                    let mut assign = node.assign.clone();
                    assign.push(mi as u16);
                    children.push((h, Node { assign, loads, g }));
                }
            }
            children.sort_by_key(|&(f, _)| f);
            children.truncate(self.config.width);
            beam = children.into_iter().map(|(_, n)| n).collect();
        }

        let bestv = beam
            .into_iter()
            .min_by_key(|n| n.g)
            .expect("beam never empties");
        for (pos, &mi) in bestv.assign.iter().enumerate() {
            mapping
                .assign(inst.tasks[pos], inst.machines[mi as usize])
                .expect("each position assigned once");
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, Scenario};

    fn scenario() -> Scenario {
        Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![4.0, 7.0, 2.0],
                vec![3.0, 1.0, 9.0],
                vec![5.0, 5.0, 5.0],
                vec![2.0, 8.0, 6.0],
                vec![7.0, 3.0, 4.0],
            ])
            .unwrap(),
        )
    }

    fn run(b: &mut BeamSearch, s: &Scenario) -> Mapping {
        let owned = s.full_instance();
        b.map(&owned.as_instance(s), &mut TieBreaker::Deterministic)
    }

    fn brute_force(s: &Scenario) -> Time {
        let machines = s.etc.machine_vec();
        let n_m = machines.len();
        let mut best: Option<Time> = None;
        for code in 0..n_m.pow(s.etc.n_tasks() as u32) {
            let mut c = code;
            let mut loads = vec![Time::ZERO; n_m];
            for task in s.etc.tasks() {
                let mi = c % n_m;
                c /= n_m;
                loads[mi] += s.etc.get(task, machines[mi]);
            }
            let ms = loads.into_iter().max().unwrap();
            if best.is_none_or(|b| ms < b) {
                best = Some(ms);
            }
        }
        best.unwrap()
    }

    #[test]
    fn wide_beam_is_exact_on_small_instances() {
        let s = scenario();
        let machines = s.etc.machine_vec();
        // Width 3^5 covers the full tree.
        let ms = run(&mut BeamSearch::new(243), &s).makespan(&s.etc, &s.initial_ready, &machines);
        assert_eq!(ms, brute_force(&s));
    }

    #[test]
    fn narrow_beam_is_still_valid_and_reasonable() {
        let s = scenario();
        let machines = s.etc.machine_vec();
        let map = run(&mut BeamSearch::new(2), &s);
        map.validate(&s.etc.task_vec(), &machines).unwrap();
        let ms = map.makespan(&s.etc, &s.initial_ready, &machines);
        assert!(ms >= brute_force(&s));
        // Never worse than serializing on one machine.
        let serial: Time = s.etc.tasks().map(|t| s.etc.get(t, machines[0])).sum();
        assert!(ms <= serial);
    }

    #[test]
    fn wider_beams_never_do_worse() {
        let s = scenario();
        let machines = s.etc.machine_vec();
        let mut last = None;
        for width in [1usize, 4, 16, 243] {
            let ms =
                run(&mut BeamSearch::new(width), &s).makespan(&s.etc, &s.initial_ready, &machines);
            if let Some(prev) = last {
                // Not a theorem in general for beam search, but holds on
                // this instance and guards against gross regressions.
                assert!(ms <= prev, "width {width}: {ms} > {prev}");
            }
            last = Some(ms);
        }
    }

    #[test]
    fn deterministic_without_rng() {
        let s = scenario();
        assert_eq!(
            run(&mut BeamSearch::default(), &s).order(),
            run(&mut BeamSearch::default(), &s).order()
        );
    }

    #[test]
    fn empty_task_set_is_fine() {
        let s = scenario();
        let machines = s.etc.machine_vec();
        let inst = Instance {
            etc: &s.etc,
            tasks: &[],
            machines: &machines,
            ready: &s.initial_ready,
            objective: s.objective,
        };
        assert!(BeamSearch::default()
            .map(&inst, &mut TieBreaker::Deterministic)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "beam width")]
    fn zero_width_rejected() {
        let _ = BeamSearch::new(0);
    }
}
