//! Naive reference implementations of every greedy heuristic, plus the
//! pre-delta-kernel SA and Tabu ([`NaiveSa`], [`NaiveTabu`]).
//!
//! These are the straightforward allocate-per-step implementations the
//! crate shipped before the [`MapWorkspace`](hcs_core::MapWorkspace)
//! refactor, retained verbatim as the *executable specification* of the
//! tie-break contract: the workspace-backed heuristics must produce
//! bit-identical mappings (assignments, assignment order, and tie-breaker
//! consumption) to these functions. The golden-equivalence property suite
//! in `tests/properties.rs` enforces that on random scenarios; the
//! naive-vs-workspace criterion benchmark quantifies what the workspace
//! buys.
//!
//! These twins are **makespan** specs: they predate the pluggable
//! [`hcs_core::Objective`] layer and score candidates by raw completion
//! time whatever the instance's objective says. The golden suites drive
//! the generic and naive paths on makespan scenarios only (under makespan
//! the generic marginal *is* `CT = ETC + ready`, in the same operand
//! order, so equality is bit-level); the other objectives are pinned by
//! their own tests in the live modules.
//!
//! None of this code is on a hot path — clarity over speed.

use hcs_core::{select, Heuristic, Instance, MachineId, Mapping, TaskId, TieBreaker, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::two_phase::Phase2;
use crate::{Kpb, SaConfig, SegmentKey, SegmentedMinMin, Sufferage, Swa, SwaConfig, TabuConfig};

/// The pre-workspace two-phase loop (Min-Min/Max-Min), one allocation per
/// step.
fn two_phase(inst: &Instance<'_>, tb: &mut TieBreaker, phase2: Phase2) -> Mapping {
    let mut unmapped: Vec<TaskId> = inst.tasks.to_vec();
    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());

    while !unmapped.is_empty() {
        let per_task: Vec<(TaskId, Vec<MachineId>, Time)> = unmapped
            .iter()
            .map(|&task| {
                let (machines, best) = select::min_candidates(
                    inst.machines.iter().map(|&m| (m, inst.ct(task, m, &ready))),
                );
                (task, machines, best)
            })
            .collect();

        let indexed = per_task
            .iter()
            .enumerate()
            .map(|(i, &(_, _, best))| (i, best));
        let (task_indices, _) = match phase2 {
            Phase2::Min => select::min_candidates(indexed),
            Phase2::Max => select::max_candidates(indexed),
        };

        let pairs: Vec<(TaskId, MachineId)> = task_indices
            .iter()
            .flat_map(|&i| {
                let (task, ref machines, _) = per_task[i];
                machines.iter().map(move |&m| (task, m))
            })
            .collect();
        let (task, machine) = pairs[tb.pick(pairs.len())];

        ready.advance(machine, inst.etc.get(task, machine));
        mapping
            .assign(task, machine)
            .expect("each task committed once");
        unmapped.retain(|&t| t != task);
    }
    mapping
}

/// Naive Min-Min.
pub fn min_min(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    two_phase(inst, tb, Phase2::Min)
}

/// Naive Max-Min.
pub fn max_min(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    two_phase(inst, tb, Phase2::Max)
}

/// Naive MCT.
pub fn mct(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    for &task in inst.tasks {
        let (cands, _) =
            select::min_candidates(inst.machines.iter().map(|&m| (m, inst.ct(task, m, &ready))));
        let machine = cands[tb.pick(cands.len())];
        ready.advance(machine, inst.etc.get(task, machine));
        mapping
            .assign(task, machine)
            .expect("task list contains no duplicates");
    }
    mapping
}

/// Naive MET.
pub fn met(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    for &task in inst.tasks {
        let (cands, _) =
            select::min_candidates(inst.machines.iter().map(|&m| (m, inst.etc.get(task, m))));
        let machine = cands[tb.pick(cands.len())];
        mapping
            .assign(task, machine)
            .expect("task list contains no duplicates");
    }
    mapping
}

/// Naive OLB.
pub fn olb(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    for &task in inst.tasks {
        let (cands, _) = select::min_candidates(inst.machines.iter().map(|&m| (m, ready.get(m))));
        let machine = cands[tb.pick(cands.len())];
        ready.advance(machine, inst.etc.get(task, machine));
        mapping
            .assign(task, machine)
            .expect("task list contains no duplicates");
    }
    mapping
}

/// Naive KPB with an explicit `k`.
pub fn kpb(inst: &Instance<'_>, tb: &mut TieBreaker, k_percent: f64) -> Mapping {
    let config = Kpb::new(k_percent);
    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    for &task in inst.tasks {
        let subset = config.subset(inst, task);
        let (cands, _) =
            select::min_candidates(subset.iter().map(|&m| (m, inst.ct(task, m, &ready))));
        let machine = cands[tb.pick(cands.len())];
        ready.advance(machine, inst.etc.get(task, machine));
        mapping
            .assign(task, machine)
            .expect("task list contains no duplicates");
    }
    mapping
}

/// Naive SWA with explicit thresholds — [`Swa::map_traced`] *is* the naive
/// implementation (the traced path is kept allocation-honest for the
/// paper-table generators), so the reference simply discards the trace.
pub fn swa(inst: &Instance<'_>, tb: &mut TieBreaker, config: SwaConfig) -> Mapping {
    Swa { config }.map_traced(inst, tb).0
}

/// Naive Sufferage — [`Sufferage::map_traced`] is the naive implementation.
pub fn sufferage(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    Sufferage.map_traced(inst, tb).0
}

/// Naive Duplex: naive Min-Min then naive Max-Min on the same tie-breaker
/// stream, keeping the strictly smaller makespan (Min-Min on ties).
pub fn duplex(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let minmin = min_min(inst, tb);
    let maxmin = max_min(inst, tb);
    let ms_min = minmin.makespan(inst.etc, inst.ready, inst.machines);
    let ms_max = maxmin.makespan(inst.etc, inst.ready, inst.machines);
    if ms_max < ms_min {
        maxmin
    } else {
        minmin
    }
}

/// Naive Segmented Min-Min with explicit parameters.
pub fn segmented_min_min(
    inst: &Instance<'_>,
    tb: &mut TieBreaker,
    segments: usize,
    key: SegmentKey,
) -> Mapping {
    let config = SegmentedMinMin::new(segments, key);
    let mut ordered: Vec<TaskId> = inst.tasks.to_vec();
    ordered.sort_by(|&a, &b| {
        config
            .key_of(inst, b)
            .cmp(&config.key_of(inst, a))
            .then(a.cmp(&b))
    });

    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    let n = ordered.len();
    if n == 0 {
        return mapping;
    }
    let seg_len = n.div_ceil(config.segments);

    for segment in ordered.chunks(seg_len) {
        let mut unmapped: Vec<TaskId> = segment.to_vec();
        while !unmapped.is_empty() {
            let per_task: Vec<(TaskId, Vec<MachineId>, Time)> = unmapped
                .iter()
                .map(|&task| {
                    let (machines, best) = select::min_candidates(
                        inst.machines.iter().map(|&m| (m, inst.ct(task, m, &ready))),
                    );
                    (task, machines, best)
                })
                .collect();
            let (task_indices, _) =
                select::min_candidates(per_task.iter().enumerate().map(|(i, &(_, _, b))| (i, b)));
            let pairs: Vec<(TaskId, MachineId)> = task_indices
                .iter()
                .flat_map(|&i| {
                    let (task, ref machines, _) = per_task[i];
                    machines.iter().map(move |&m| (task, m))
                })
                .collect();
            let (task, machine) = pairs[tb.pick(pairs.len())];
            ready.advance(machine, inst.etc.get(task, machine));
            mapping
                .assign(task, machine)
                .expect("each task mapped once");
            unmapped.retain(|&t| t != task);
        }
    }
    mapping
}

/// A naive reference packaged as a [`Heuristic`]. It deliberately does
/// **not** override `map_with`, so even through the workspace-threaded
/// iterative driver it stays on the naive path — that is what makes it
/// usable as both golden reference and benchmark baseline.
pub struct Naive {
    name: &'static str,
    f: fn(&Instance<'_>, &mut TieBreaker) -> Mapping,
}

impl Heuristic for Naive {
    fn name(&self) -> &'static str {
        self.name
    }
    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        (self.f)(inst, tb)
    }
}

fn kpb_default(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    kpb(inst, tb, Kpb::default().k_percent)
}

fn swa_default(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    swa(inst, tb, SwaConfig::default())
}

fn smm_default(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let d = SegmentedMinMin::default();
    segmented_min_min(inst, tb, d.segments, d.key)
}

/// The naive twin of every heuristic in
/// [`all_heuristics`](crate::all_heuristics) (default-parameter variants),
/// same display names, same order.
pub fn naive_roster() -> Vec<Naive> {
    [
        (
            "Min-Min",
            min_min as fn(&Instance<'_>, &mut TieBreaker) -> Mapping,
        ),
        ("MCT", mct),
        ("MET", met),
        ("SWA", swa_default),
        ("KPB", kpb_default),
        ("Sufferage", sufferage),
        ("OLB", olb),
        ("Max-Min", max_min),
        ("Duplex", duplex),
        ("Segmented-Min-Min", smm_default),
    ]
    .into_iter()
    .map(|(name, f)| Naive { name, f })
    .collect()
}

/// The naive twin of one heuristic by display name (same normalization as
/// [`by_name`](crate::by_name)).
pub fn naive_by_name(name: &str) -> Option<Naive> {
    let wanted = name.to_ascii_lowercase().replace('-', "");
    naive_roster()
        .into_iter()
        .find(|h| h.name.to_ascii_lowercase().replace('-', "") == wanted)
}

/// Machine loads for a machine-index assignment vector — the naive twin of
/// [`LoadTracker::rebuild`](hcs_core::LoadTracker::rebuild).
fn naive_loads_of(inst: &Instance<'_>, assign: &[usize]) -> Vec<Time> {
    let mut loads: Vec<Time> = inst.machines.iter().map(|&m| inst.ready.get(m)).collect();
    for (pos, &mi) in assign.iter().enumerate() {
        loads[mi] += inst.etc.get(inst.tasks[pos], inst.machines[mi]);
    }
    loads
}

fn naive_makespan(loads: &[Time]) -> Time {
    loads.iter().copied().max().expect("non-empty machine set")
}

/// The pre-[`LoadTracker`](hcs_core::LoadTracker) Simulated Annealing:
/// plain load vector, every candidate move applied, re-scanned over all
/// `m` machines, and restored on rejection. Retained verbatim as the
/// executable specification for [`Sa`](crate::Sa) — identical seeds must
/// yield bit-identical makespan trajectories and final mappings.
#[derive(Clone, Debug)]
pub struct NaiveSa {
    config: SaConfig,
    rng: StdRng,
}

impl NaiveSa {
    /// A naive SA with default configuration.
    pub fn new(seed: u64) -> Self {
        NaiveSa::with_config(seed, SaConfig::default())
    }

    /// A naive SA with explicit configuration (same validation as
    /// [`Sa::with_config`](crate::Sa::with_config)).
    pub fn with_config(seed: u64, config: SaConfig) -> Self {
        assert!(
            config.cooling > 0.0 && config.cooling < 1.0,
            "cooling factor must be in (0, 1)"
        );
        assert!(config.sweep > 0, "sweep must be positive");
        NaiveSa {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Naive twin of [`Sa::map_observed`](crate::Sa::map_observed): the
    /// observer fires at the same points (start state, every accepted
    /// move) with the same arguments.
    pub fn map_observed(
        &mut self,
        inst: &Instance<'_>,
        _tb: &mut TieBreaker,
        mut observe: impl FnMut(&[usize], &[Time], Time),
    ) -> Mapping {
        let n_tasks = inst.tasks.len();
        let n_machines = inst.machines.len();
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        if n_tasks == 0 {
            return mapping;
        }

        let mut assign: Vec<usize> = if self.config.seed_minmin {
            crate::sa::minmin_assignment(inst)
        } else {
            (0..n_tasks)
                .map(|_| self.rng.gen_range(0..n_machines))
                .collect()
        };
        let mut loads = naive_loads_of(inst, &assign);

        let mut current = naive_makespan(&loads);
        let mut best = current;
        let mut best_assign = assign.clone();
        let t0 = current.get().max(1e-9);
        let mut temperature = t0;
        let t_floor = t0 * self.config.t_min_fraction;
        observe(&assign, &loads, current);

        for step in 0..self.config.max_steps {
            if temperature < t_floor {
                break;
            }
            let pos = self.rng.gen_range(0..n_tasks);
            let old_mi = assign[pos];
            let new_mi = self.rng.gen_range(0..n_machines);
            if new_mi != old_mi {
                let task = inst.tasks[pos];
                let old_load = loads[old_mi];
                let new_load = loads[new_mi];
                loads[old_mi] = old_load - inst.etc.get(task, inst.machines[old_mi]);
                loads[new_mi] = new_load + inst.etc.get(task, inst.machines[new_mi]);
                let candidate = naive_makespan(&loads);

                let delta = candidate.get() - current.get();
                let accept =
                    delta <= 0.0 || self.rng.gen_range(0.0..1.0) < (-delta / temperature).exp();
                if accept {
                    assign[pos] = new_mi;
                    current = candidate;
                    if current < best {
                        best = current;
                        best_assign.clone_from(&assign);
                    }
                    observe(&assign, &loads, current);
                } else {
                    loads[old_mi] = old_load;
                    loads[new_mi] = new_load;
                }
            }
            if (step + 1) % self.config.sweep == 0 {
                temperature *= self.config.cooling;
            }
        }

        for (pos, &mi) in best_assign.iter().enumerate() {
            mapping
                .assign(inst.tasks[pos], inst.machines[mi])
                .expect("each position assigned once");
        }
        mapping
    }
}

impl Heuristic for NaiveSa {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_observed(inst, tb, |_, _, _| {})
    }
}

/// The pre-[`LoadTracker`](hcs_core::LoadTracker) Tabu Search: each sweep
/// candidate is applied to the load vector, the makespan re-scanned over
/// all `m` machines, and the loads restored when the move does not
/// improve. Retained verbatim as the executable specification for
/// [`Tabu`](crate::Tabu).
#[derive(Clone, Debug)]
pub struct NaiveTabu {
    config: TabuConfig,
    rng: StdRng,
}

impl NaiveTabu {
    /// A naive Tabu with default configuration.
    pub fn new(seed: u64) -> Self {
        NaiveTabu::with_config(seed, TabuConfig::default())
    }

    /// A naive Tabu with explicit configuration (same validation as
    /// [`Tabu::with_config`](crate::Tabu::with_config)).
    pub fn with_config(seed: u64, config: TabuConfig) -> Self {
        assert!(config.max_hops > 0, "hop budget must be positive");
        NaiveTabu {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Naive twin of [`Tabu::map_observed`](crate::Tabu::map_observed):
    /// the observer fires at the same points (start state, accepted short
    /// hops, restarts) with the same arguments.
    pub fn map_observed(
        &mut self,
        inst: &Instance<'_>,
        _tb: &mut TieBreaker,
        mut observe: impl FnMut(&[usize], &[Time], Time),
    ) -> Mapping {
        let n_tasks = inst.tasks.len();
        let n_machines = inst.machines.len();
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        if n_tasks == 0 {
            return mapping;
        }

        let mut assign: Vec<usize> = (0..n_tasks)
            .map(|_| self.rng.gen_range(0..n_machines))
            .collect();
        let mut loads = naive_loads_of(inst, &assign);
        let mut current = naive_makespan(&loads);
        let mut best = current;
        let mut best_assign = assign.clone();
        let mut tabu: HashSet<Vec<usize>> = HashSet::new();
        let mut hops = 0usize;
        observe(&assign, &loads, current);

        'search: while hops < self.config.max_hops {
            loop {
                let mut improved = false;
                'sweep: for pos in 0..n_tasks {
                    let old_mi = assign[pos];
                    let task = inst.tasks[pos];
                    for mi in 0..n_machines {
                        if mi == old_mi {
                            continue;
                        }
                        let old_src = loads[old_mi];
                        let old_dst = loads[mi];
                        loads[old_mi] = old_src - inst.etc.get(task, inst.machines[old_mi]);
                        loads[mi] = old_dst + inst.etc.get(task, inst.machines[mi]);
                        let candidate = naive_makespan(&loads);
                        if candidate < current {
                            assign[pos] = mi;
                            current = candidate;
                            improved = true;
                            hops += 1;
                            if current < best {
                                best = current;
                                best_assign.clone_from(&assign);
                            }
                            observe(&assign, &loads, current);
                            if hops >= self.config.max_hops {
                                break 'search;
                            }
                            break 'sweep;
                        }
                        loads[old_mi] = old_src;
                        loads[mi] = old_dst;
                    }
                }
                if !improved {
                    break;
                }
            }

            if tabu.len() < self.config.tabu_capacity {
                tabu.insert(assign.clone());
            }
            let mut restarted = false;
            for _ in 0..self.config.restart_attempts {
                let candidate: Vec<usize> = (0..n_tasks)
                    .map(|_| self.rng.gen_range(0..n_machines))
                    .collect();
                if !tabu.contains(&candidate) {
                    assign = candidate;
                    loads = naive_loads_of(inst, &assign);
                    current = naive_makespan(&loads);
                    hops += 1;
                    restarted = true;
                    if current < best {
                        best = current;
                        best_assign.clone_from(&assign);
                    }
                    observe(&assign, &loads, current);
                    break;
                }
            }
            if !restarted {
                break;
            }
        }

        for (pos, &mi) in best_assign.iter().enumerate() {
            mapping
                .assign(inst.tasks[pos], inst.machines[mi])
                .expect("each position assigned once");
        }
        mapping
    }
}

impl Heuristic for NaiveTabu {
    fn name(&self) -> &'static str {
        "Tabu"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_observed(inst, tb, |_, _, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, Scenario};

    #[test]
    fn roster_matches_all_heuristics_names_and_order() {
        let naive: Vec<&str> = naive_roster().iter().map(|h| h.name()).collect();
        let real: Vec<&str> = crate::all_heuristics().iter().map(|h| h.name()).collect();
        assert_eq!(naive, real);
    }

    #[test]
    fn naive_by_name_normalizes_like_by_name() {
        assert_eq!(naive_by_name("min-min").unwrap().name(), "Min-Min");
        assert_eq!(naive_by_name("MINMIN").unwrap().name(), "Min-Min");
        assert_eq!(
            naive_by_name("segmented-min-min").unwrap().name(),
            "Segmented-Min-Min"
        );
        assert!(naive_by_name("nope").is_none());
    }

    #[test]
    fn naive_stays_naive_through_map_with() {
        // `Naive` must not pick up a workspace override: the default
        // `map_with` forwards to `map`, keeping the reference path intact
        // for benchmarks that drive it through `iterative::IterativeRun`.
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0], vec![8.0, 3.0]]).unwrap(),
        );
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = hcs_core::MapWorkspace::new();
        let mut h = naive_by_name("Min-Min").unwrap();
        let a = h.map(&inst, &mut TieBreaker::Deterministic);
        let b = h.map_with(&inst, &mut TieBreaker::Deterministic, &mut ws);
        assert_eq!(a, b);
    }
}
