//! Naive reference implementations of every greedy heuristic.
//!
//! These are the straightforward allocate-per-step implementations the
//! crate shipped before the [`MapWorkspace`](hcs_core::MapWorkspace)
//! refactor, retained verbatim as the *executable specification* of the
//! tie-break contract: the workspace-backed heuristics must produce
//! bit-identical mappings (assignments, assignment order, and tie-breaker
//! consumption) to these functions. The golden-equivalence property suite
//! in `tests/properties.rs` enforces that on random scenarios; the
//! naive-vs-workspace criterion benchmark quantifies what the workspace
//! buys.
//!
//! None of this code is on a hot path — clarity over speed.

use hcs_core::{select, Heuristic, Instance, MachineId, Mapping, TaskId, TieBreaker, Time};

use crate::two_phase::Phase2;
use crate::{Kpb, SegmentKey, SegmentedMinMin, Sufferage, Swa, SwaConfig};

/// The pre-workspace two-phase loop (Min-Min/Max-Min), one allocation per
/// step.
fn two_phase(inst: &Instance<'_>, tb: &mut TieBreaker, phase2: Phase2) -> Mapping {
    let mut unmapped: Vec<TaskId> = inst.tasks.to_vec();
    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());

    while !unmapped.is_empty() {
        let per_task: Vec<(TaskId, Vec<MachineId>, Time)> = unmapped
            .iter()
            .map(|&task| {
                let (machines, best) = select::min_candidates(
                    inst.machines.iter().map(|&m| (m, inst.ct(task, m, &ready))),
                );
                (task, machines, best)
            })
            .collect();

        let indexed = per_task
            .iter()
            .enumerate()
            .map(|(i, &(_, _, best))| (i, best));
        let (task_indices, _) = match phase2 {
            Phase2::Min => select::min_candidates(indexed),
            Phase2::Max => select::max_candidates(indexed),
        };

        let pairs: Vec<(TaskId, MachineId)> = task_indices
            .iter()
            .flat_map(|&i| {
                let (task, ref machines, _) = per_task[i];
                machines.iter().map(move |&m| (task, m))
            })
            .collect();
        let (task, machine) = pairs[tb.pick(pairs.len())];

        ready.advance(machine, inst.etc.get(task, machine));
        mapping
            .assign(task, machine)
            .expect("each task committed once");
        unmapped.retain(|&t| t != task);
    }
    mapping
}

/// Naive Min-Min.
pub fn min_min(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    two_phase(inst, tb, Phase2::Min)
}

/// Naive Max-Min.
pub fn max_min(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    two_phase(inst, tb, Phase2::Max)
}

/// Naive MCT.
pub fn mct(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    for &task in inst.tasks {
        let (cands, _) =
            select::min_candidates(inst.machines.iter().map(|&m| (m, inst.ct(task, m, &ready))));
        let machine = cands[tb.pick(cands.len())];
        ready.advance(machine, inst.etc.get(task, machine));
        mapping
            .assign(task, machine)
            .expect("task list contains no duplicates");
    }
    mapping
}

/// Naive MET.
pub fn met(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    for &task in inst.tasks {
        let (cands, _) =
            select::min_candidates(inst.machines.iter().map(|&m| (m, inst.etc.get(task, m))));
        let machine = cands[tb.pick(cands.len())];
        mapping
            .assign(task, machine)
            .expect("task list contains no duplicates");
    }
    mapping
}

/// Naive OLB.
pub fn olb(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    for &task in inst.tasks {
        let (cands, _) = select::min_candidates(inst.machines.iter().map(|&m| (m, ready.get(m))));
        let machine = cands[tb.pick(cands.len())];
        ready.advance(machine, inst.etc.get(task, machine));
        mapping
            .assign(task, machine)
            .expect("task list contains no duplicates");
    }
    mapping
}

/// Naive KPB with an explicit `k`.
pub fn kpb(inst: &Instance<'_>, tb: &mut TieBreaker, k_percent: f64) -> Mapping {
    let config = Kpb::new(k_percent);
    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    for &task in inst.tasks {
        let subset = config.subset(inst, task);
        let (cands, _) =
            select::min_candidates(subset.iter().map(|&m| (m, inst.ct(task, m, &ready))));
        let machine = cands[tb.pick(cands.len())];
        ready.advance(machine, inst.etc.get(task, machine));
        mapping
            .assign(task, machine)
            .expect("task list contains no duplicates");
    }
    mapping
}

/// Naive SWA with explicit thresholds — [`Swa::map_traced`] *is* the naive
/// implementation (the traced path is kept allocation-honest for the
/// paper-table generators), so the reference simply discards the trace.
pub fn swa(inst: &Instance<'_>, tb: &mut TieBreaker, config: SwaConfig) -> Mapping {
    Swa { config }.map_traced(inst, tb).0
}

/// Naive Sufferage — [`Sufferage::map_traced`] is the naive implementation.
pub fn sufferage(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    Sufferage.map_traced(inst, tb).0
}

/// Naive Duplex: naive Min-Min then naive Max-Min on the same tie-breaker
/// stream, keeping the strictly smaller makespan (Min-Min on ties).
pub fn duplex(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let minmin = min_min(inst, tb);
    let maxmin = max_min(inst, tb);
    let ms_min = minmin.makespan(inst.etc, inst.ready, inst.machines);
    let ms_max = maxmin.makespan(inst.etc, inst.ready, inst.machines);
    if ms_max < ms_min {
        maxmin
    } else {
        minmin
    }
}

/// Naive Segmented Min-Min with explicit parameters.
pub fn segmented_min_min(
    inst: &Instance<'_>,
    tb: &mut TieBreaker,
    segments: usize,
    key: SegmentKey,
) -> Mapping {
    let config = SegmentedMinMin::new(segments, key);
    let mut ordered: Vec<TaskId> = inst.tasks.to_vec();
    ordered.sort_by(|&a, &b| {
        config
            .key_of(inst, b)
            .cmp(&config.key_of(inst, a))
            .then(a.cmp(&b))
    });

    let mut ready = inst.working_ready();
    let mut mapping = Mapping::new(inst.etc.n_tasks());
    let n = ordered.len();
    if n == 0 {
        return mapping;
    }
    let seg_len = n.div_ceil(config.segments);

    for segment in ordered.chunks(seg_len) {
        let mut unmapped: Vec<TaskId> = segment.to_vec();
        while !unmapped.is_empty() {
            let per_task: Vec<(TaskId, Vec<MachineId>, Time)> = unmapped
                .iter()
                .map(|&task| {
                    let (machines, best) = select::min_candidates(
                        inst.machines.iter().map(|&m| (m, inst.ct(task, m, &ready))),
                    );
                    (task, machines, best)
                })
                .collect();
            let (task_indices, _) =
                select::min_candidates(per_task.iter().enumerate().map(|(i, &(_, _, b))| (i, b)));
            let pairs: Vec<(TaskId, MachineId)> = task_indices
                .iter()
                .flat_map(|&i| {
                    let (task, ref machines, _) = per_task[i];
                    machines.iter().map(move |&m| (task, m))
                })
                .collect();
            let (task, machine) = pairs[tb.pick(pairs.len())];
            ready.advance(machine, inst.etc.get(task, machine));
            mapping
                .assign(task, machine)
                .expect("each task mapped once");
            unmapped.retain(|&t| t != task);
        }
    }
    mapping
}

/// A naive reference packaged as a [`Heuristic`]. It deliberately does
/// **not** override `map_with`, so even through the workspace-threaded
/// iterative driver it stays on the naive path — that is what makes it
/// usable as both golden reference and benchmark baseline.
pub struct Naive {
    name: &'static str,
    f: fn(&Instance<'_>, &mut TieBreaker) -> Mapping,
}

impl Heuristic for Naive {
    fn name(&self) -> &'static str {
        self.name
    }
    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        (self.f)(inst, tb)
    }
}

fn kpb_default(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    kpb(inst, tb, Kpb::default().k_percent)
}

fn swa_default(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    swa(inst, tb, SwaConfig::default())
}

fn smm_default(inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
    let d = SegmentedMinMin::default();
    segmented_min_min(inst, tb, d.segments, d.key)
}

/// The naive twin of every heuristic in
/// [`all_heuristics`](crate::all_heuristics) (default-parameter variants),
/// same display names, same order.
pub fn naive_roster() -> Vec<Naive> {
    [
        (
            "Min-Min",
            min_min as fn(&Instance<'_>, &mut TieBreaker) -> Mapping,
        ),
        ("MCT", mct),
        ("MET", met),
        ("SWA", swa_default),
        ("KPB", kpb_default),
        ("Sufferage", sufferage),
        ("OLB", olb),
        ("Max-Min", max_min),
        ("Duplex", duplex),
        ("Segmented-Min-Min", smm_default),
    ]
    .into_iter()
    .map(|(name, f)| Naive { name, f })
    .collect()
}

/// The naive twin of one heuristic by display name (same normalization as
/// [`by_name`](crate::by_name)).
pub fn naive_by_name(name: &str) -> Option<Naive> {
    let wanted = name.to_ascii_lowercase().replace('-', "");
    naive_roster()
        .into_iter()
        .find(|h| h.name.to_ascii_lowercase().replace('-', "") == wanted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, Scenario};

    #[test]
    fn roster_matches_all_heuristics_names_and_order() {
        let naive: Vec<&str> = naive_roster().iter().map(|h| h.name()).collect();
        let real: Vec<&str> = crate::all_heuristics().iter().map(|h| h.name()).collect();
        assert_eq!(naive, real);
    }

    #[test]
    fn naive_by_name_normalizes_like_by_name() {
        assert_eq!(naive_by_name("min-min").unwrap().name(), "Min-Min");
        assert_eq!(naive_by_name("MINMIN").unwrap().name(), "Min-Min");
        assert_eq!(
            naive_by_name("segmented-min-min").unwrap().name(),
            "Segmented-Min-Min"
        );
        assert!(naive_by_name("nope").is_none());
    }

    #[test]
    fn naive_stays_naive_through_map_with() {
        // `Naive` must not pick up a workspace override: the default
        // `map_with` forwards to `map`, keeping the reference path intact
        // for benchmarks that drive it through `iterative::IterativeRun`.
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![2.0, 6.0], vec![3.0, 4.0], vec![8.0, 3.0]]).unwrap(),
        );
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut ws = hcs_core::MapWorkspace::new();
        let mut h = naive_by_name("Min-Min").unwrap();
        let a = h.map(&inst, &mut TieBreaker::Deterministic);
        let b = h.map_with(&inst, &mut TieBreaker::Deterministic, &mut ws);
        assert_eq!(a, b);
    }
}
