//! Segmented Min-Min — Wu & Shu, "Segmented min-min: A static mapping
//! algorithm for meta-tasks on heterogeneous computing systems" (HCW 2000);
//! the paper's reference \[18\].
//!
//! Plain Min-Min schedules short tasks first, which can leave the long
//! tasks to straggle. Segmented Min-Min counteracts that:
//!
//! 1. compute a per-task *key* (the average, minimum or maximum of the
//!    task's ETC row — Wu & Shu's three variants);
//! 2. sort tasks by the key, **largest first**, and split them into `N`
//!    equal segments;
//! 3. run Min-Min segment by segment (machine ready times carry over), so
//!    each batch of long tasks is placed before the next batch of shorter
//!    ones.
//!
//! With one segment this is exactly Min-Min. Included as an extension
//! baseline for the Monte-Carlo studies; the iterative technique treats it
//! like any other heuristic.

use hcs_core::{Heuristic, Instance, MapWorkspace, Mapping, TaskId, TieBreaker, Time};
use serde::{Deserialize, Serialize};

use crate::two_phase;

/// The per-task sort key of Wu & Shu's three variants.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentKey {
    /// Average ETC over the active machines (Smm-avg, the usual default).
    Avg,
    /// Minimum ETC (Smm-min).
    Min,
    /// Maximum ETC (Smm-max).
    Max,
}

/// The Segmented Min-Min heuristic.
#[derive(Copy, Clone, Debug)]
pub struct SegmentedMinMin {
    /// Number of segments (Wu & Shu use 4).
    pub segments: usize,
    /// Sorting key variant.
    pub key: SegmentKey,
}

impl Default for SegmentedMinMin {
    /// Wu & Shu's reported-best configuration: four segments, average key.
    fn default() -> Self {
        SegmentedMinMin {
            segments: 4,
            key: SegmentKey::Avg,
        }
    }
}

impl SegmentedMinMin {
    /// A Segmented Min-Min with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics when `segments == 0`.
    pub fn new(segments: usize, key: SegmentKey) -> Self {
        assert!(segments > 0, "need at least one segment");
        SegmentedMinMin { segments, key }
    }

    pub(crate) fn key_of(&self, inst: &Instance<'_>, task: TaskId) -> Time {
        let values = inst.machines.iter().map(|&m| inst.etc.get(task, m));
        match self.key {
            SegmentKey::Avg => {
                let sum: Time = values.sum();
                sum / (inst.machines.len() as f64)
            }
            SegmentKey::Min => values.min().expect("instance has machines"),
            SegmentKey::Max => values.max().expect("instance has machines"),
        }
    }
}

impl Heuristic for SegmentedMinMin {
    fn name(&self) -> &'static str {
        "Segmented-Min-Min"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_with(inst, tb, &mut MapWorkspace::new())
    }

    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        ws.begin(inst);
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        if inst.tasks.is_empty() {
            return mapping;
        }

        // Sort by key descending; equal keys keep task-list order so the
        // segmentation itself is deterministic. The sorted segment is the
        // canonical tie-candidate order within each Min-Min run.
        let mut ordered = ws.take_task_buf();
        ordered.extend_from_slice(inst.tasks);
        ordered.sort_by(|&a, &b| {
            self.key_of(inst, b)
                .cmp(&self.key_of(inst, a))
                .then(a.cmp(&b))
        });
        let seg_len = ordered.len().div_ceil(self.segments);

        for segment in ordered.chunks(seg_len) {
            // Min-Min within the segment, ready times carried over (only
            // `activate` resets between segments, never `begin`).
            ws.activate(segment);
            two_phase::run_segment(inst, tb, ws, two_phase::Phase2::Min, segment, &mut mapping);
        }
        ws.give_task_buf(ordered);
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinMin;
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, Scenario};

    fn map_with(h: &mut dyn Heuristic, s: &Scenario) -> Mapping {
        let owned = s.full_instance();
        h.map(&owned.as_instance(s), &mut TieBreaker::Deterministic)
    }

    #[test]
    fn one_segment_is_plain_minmin_on_tie_free_instances() {
        // Caveat: the equivalence is modulo tie ordering — SMM re-sorts the
        // task list, which permutes the canonical candidate order used to
        // break ties. On a tie-free instance the mappings coincide exactly.
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![2.0, 6.5],
                vec![3.1, 4.2],
                vec![8.0, 3.3],
                vec![1.4, 9.0],
            ])
            .unwrap(),
        );
        let smm = map_with(&mut SegmentedMinMin::new(1, SegmentKey::Avg), &s);
        let mm = map_with(&mut MinMin, &s);
        // Same assignments (commit order may differ with the sorted list).
        for task in s.etc.tasks() {
            assert_eq!(smm.machine_of(task), mm.machine_of(task), "{task}");
        }
    }

    #[test]
    fn long_tasks_are_scheduled_in_the_first_segment() {
        // Two long tasks (avg 10) and two short ones (avg 1), two segments:
        // the long pair must be committed before the short pair.
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![1.0, 1.0],   // t0 short
                vec![10.0, 10.0], // t1 long
                vec![1.0, 1.0],   // t2 short
                vec![10.0, 10.0], // t3 long
            ])
            .unwrap(),
        );
        let map = map_with(&mut SegmentedMinMin::new(2, SegmentKey::Avg), &s);
        let order: Vec<TaskId> = map.order().iter().map(|&(task, _)| task).collect();
        let pos = |task: TaskId| order.iter().position(|&x| x == task).unwrap();
        assert!(pos(t(1)) < pos(t(0)));
        assert!(pos(t(3)) < pos(t(2)));
    }

    #[test]
    fn beats_minmin_on_the_classic_straggler_workload() {
        // Many short tasks + one long: Min-Min leaves the long task last
        // on a loaded machine; Segmented Min-Min places it first.
        let mut rows = vec![vec![10.0, 10.0]];
        rows.extend(std::iter::repeat_n(vec![2.0, 2.0], 4));
        let s = Scenario::with_zero_ready(EtcMatrix::from_rows(&rows).unwrap());
        let machines = s.etc.machine_vec();

        let mm = map_with(&mut MinMin, &s).makespan(&s.etc, &s.initial_ready, &machines);
        let smm = map_with(&mut SegmentedMinMin::new(4, SegmentKey::Avg), &s).makespan(
            &s.etc,
            &s.initial_ready,
            &machines,
        );
        assert!(smm < mm, "segmented {smm} vs plain {mm}");
    }

    #[test]
    fn key_variants_sort_differently() {
        // t0: ETC (1, 9) — avg 5, min 1, max 9. t1: ETC (4, 4) — all 4.
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[vec![1.0, 9.0], vec![4.0, 4.0]]).unwrap(),
        );
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let avg = SegmentedMinMin::new(2, SegmentKey::Avg);
        let min = SegmentedMinMin::new(2, SegmentKey::Min);
        let max = SegmentedMinMin::new(2, SegmentKey::Max);
        assert_eq!(avg.key_of(&inst, t(0)), hcs_core::Time::new(5.0));
        assert_eq!(min.key_of(&inst, t(0)), hcs_core::Time::new(1.0));
        assert_eq!(max.key_of(&inst, t(0)), hcs_core::Time::new(9.0));
        assert_eq!(avg.key_of(&inst, t(1)), hcs_core::Time::new(4.0));
    }

    #[test]
    fn maps_every_task_with_odd_segment_sizes() {
        // 5 tasks into 3 segments: chunks of 2, 2, 1.
        let s = Scenario::with_zero_ready(
            EtcMatrix::from_rows(&[
                vec![5.0, 2.0],
                vec![1.0, 8.0],
                vec![6.0, 3.0],
                vec![2.0, 2.0],
                vec![9.0, 4.0],
            ])
            .unwrap(),
        );
        let map = map_with(&mut SegmentedMinMin::new(3, SegmentKey::Max), &s);
        assert_eq!(map.len(), 5);
        map.validate(&s.etc.task_vec(), &[m(0), m(1)]).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_rejected() {
        let _ = SegmentedMinMin::new(0, SegmentKey::Avg);
    }
}
