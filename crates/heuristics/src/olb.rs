//! Opportunistic Load Balancing (OLB) — baseline from Braun et al. \[3\].
//!
//! Walk the task list in order; assign each task to the machine that
//! becomes **ready** earliest, without looking at the task's ETC at all.
//! OLB keeps machines busy but is oblivious to heterogeneity; it is the
//! customary "do the simplest thing" baseline in this literature and is
//! included for the extended Monte-Carlo studies (experiment X1).

use hcs_core::{Heuristic, Instance, MapWorkspace, Mapping, TieBreaker};

/// The OLB heuristic (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct Olb;

impl Heuristic for Olb {
    fn name(&self) -> &'static str {
        "OLB"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_with(inst, tb, &mut MapWorkspace::new())
    }

    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        ws.begin(inst);
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        for &task in inst.tasks {
            let (cands, _) = ws.min_ready_candidates(inst);
            let machine = cands[tb.pick(cands.len())];
            ws.advance(machine, inst.etc.get(task, machine));
            ws.trace_commit(task, machine);
            mapping
                .assign(task, machine)
                .expect("task list contains no duplicates");
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, ReadyTimes, Scenario};

    #[test]
    fn picks_earliest_ready_machine_ignoring_etc() {
        // m1 is ready earlier even though the task is much slower there.
        let etc = EtcMatrix::from_rows(&[vec![1.0, 100.0]]).unwrap();
        let s = Scenario::with_ready(etc, ReadyTimes::from_values(&[5.0, 0.0]));
        let owned = s.full_instance();
        let map = Olb.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        assert_eq!(map.machine_of(t(0)), Some(m(1)));
    }

    #[test]
    fn round_robins_on_equal_ready_times_via_advancing_load() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 2.0], vec![2.0, 2.0], vec![2.0, 2.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let map = Olb.map(&owned.as_instance(&s), &mut TieBreaker::Deterministic);
        // t0 -> m0 (tie, lowest index), t1 -> m1 (m0 now busy), t2 -> m0.
        assert_eq!(map.machine_of(t(0)), Some(m(0)));
        assert_eq!(map.machine_of(t(1)), Some(m(1)));
        assert_eq!(map.machine_of(t(2)), Some(m(0)));
    }

    #[test]
    fn random_ties_spread_choices() {
        let etc = EtcMatrix::from_rows(&[vec![1.0, 1.0, 1.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..48 {
            let map = Olb.map(&owned.as_instance(&s), &mut TieBreaker::random(seed));
            seen.insert(map.machine_of(t(0)).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
