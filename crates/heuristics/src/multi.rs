//! Multi-restart SA and Tabu: K independent seeds fanned across a worker
//! pool, publishing improvements into a lock-free shared incumbent
//! (DESIGN.md §16).
//!
//! Restart `k` runs the unmodified single-threaded engine on RNG stream
//! [`split_stream`]`(seed, k)` with its own `LoadTracker` — restarts share
//! no search state, only the [`Incumbent`] slot they publish improvements
//! into. The final answer is the minimum over all restarts by *(exact
//! objective value, seed index)*, computed from the per-restart results —
//! never read back from the (quantized, advisory) slot.
//!
//! # Lane-static scheduling and adoption
//!
//! The pool schedule is **lane-static**: worker `t` of `T` runs restarts
//! `k ≡ t (mod T)` in increasing order. A late restart may *adopt* a
//! start state ([`MultiConfig::adopt`]): it begins from the best final
//! assignment among its own lane's completed predecessors instead of a
//! random start. Because each lane is sequential, what a restart can see
//! is a function of `(seed, threads)` alone — adopting from the *global*
//! incumbent would make the start state a race. This is the standard
//! determinism/greediness trade: with `adopt` off, results are identical
//! for every thread count (the restarts are fully independent); with it
//! on, they are pinned per `(seed, threads)`.

use hcs_core::{split_stream, Heuristic, Incumbent, Instance, Mapping, TieBreaker, Time};
use serde::{Deserialize, Serialize};

use crate::sa::{Sa, SaConfig};
use crate::tabu::{Tabu, TabuConfig};

/// Worker-pool parameters shared by [`MultiSa`] and [`MultiTabu`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiConfig {
    /// Worker threads `T` (lanes). `1` runs every restart sequentially on
    /// the calling thread's schedule.
    pub threads: usize,
    /// Restart count `K` (independent seeds). Restart 0 runs RNG stream 0
    /// — the base seed — so `threads == 1 && restarts == 1` is
    /// bit-identical to the single-threaded engine.
    pub restarts: usize,
    /// Whether late restarts adopt their lane's best completed result as
    /// the start state (see the module docs for why lane-local).
    pub adopt: bool,
}

impl Default for MultiConfig {
    fn default() -> Self {
        MultiConfig {
            threads: 4,
            restarts: 8,
            adopt: true,
        }
    }
}

impl MultiConfig {
    /// The conventional restart count for a pool of `threads` workers: two
    /// waves, so every lane past the first wave exercises adoption.
    pub fn restarts_for(threads: usize) -> usize {
        threads.saturating_mul(2).max(1)
    }

    fn validate(&self) {
        assert!(self.threads >= 1, "need at least one worker thread");
        assert!(self.restarts >= 1, "need at least one restart");
        assert!(
            self.restarts <= usize::from(u16::MAX),
            "restart count exceeds the incumbent tag width"
        );
    }
}

/// The final mapping translated back to a machine-index-per-task-position
/// assignment (the engines' native start-state encoding).
fn assignment_indices(mapping: &Mapping, inst: &Instance<'_>) -> Vec<usize> {
    inst.tasks
        .iter()
        .map(|&task| {
            let m = mapping.machine_of(task).expect("mapping covers instance");
            inst.machines
                .iter()
                .position(|&mm| mm == m)
                .expect("machine belongs to instance")
        })
        .collect()
}

/// The shared fan-out: lanes over scoped threads, lane-local adoption,
/// incumbent publishes, and the deterministic `(value, seed index)` final
/// reduction. `run` invokes one engine's `map_observed_from`, forwarding
/// each observed objective value to the publish hook.
fn run_restarts<E: Send>(
    engines: &mut [E],
    threads: usize,
    adopt: bool,
    inst: &Instance<'_>,
    incumbent: &Incumbent,
    run: impl Fn(&mut E, Option<&[usize]>, &mut dyn FnMut(Time)) -> Mapping + Sync,
) -> Mapping {
    let threads = threads.min(engines.len()).max(1);
    let mut lanes: Vec<Vec<(usize, &mut E)>> = (0..threads).map(|_| Vec::new()).collect();
    for (k, engine) in engines.iter_mut().enumerate() {
        lanes[k % threads].push((k, engine));
    }
    let run = &run;
    let mut all: Vec<(Time, usize, Mapping)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                s.spawn(move || {
                    let mut lane_best: Option<(Time, usize, Vec<usize>)> = None;
                    let mut out: Vec<(Time, usize, Mapping)> = Vec::new();
                    for (k, engine) in lane {
                        let tag = k as u16;
                        let start = if adopt {
                            lane_best.as_ref().map(|(_, _, a)| a.clone())
                        } else {
                            None
                        };
                        let mapping = run(engine, start.as_deref(), &mut |value| {
                            incumbent.publish(value, tag);
                        });
                        let value = mapping.objective_value(
                            inst.etc,
                            inst.ready,
                            inst.machines,
                            inst.objective,
                        );
                        incumbent.publish(value, tag);
                        if lane_best.as_ref().is_none_or(|&(bv, _, _)| value < bv) {
                            lane_best = Some((value, k, assignment_indices(&mapping, inst)));
                        }
                        out.push((value, k, mapping));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            all.extend(handle.join().expect("restart worker panicked"));
        }
    });
    all.into_iter()
        .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
        .expect("at least one restart ran")
        .2
}

/// Multi-restart Simulated Annealing (see the module docs).
#[derive(Clone, Debug)]
pub struct MultiSa {
    config: MultiConfig,
    engines: Vec<Sa>,
    last_incumbent: Option<(Time, u16)>,
}

impl MultiSa {
    /// A multi-restart SA with default pool and engine configuration.
    pub fn new(seed: u64) -> Self {
        MultiSa::with_config(seed, MultiConfig::default(), SaConfig::default())
    }

    /// A multi-restart SA with explicit pool and per-restart configuration.
    /// Restart `k` is `Sa::with_config(split_stream(seed, k), sa)`; the
    /// engines persist across `map` calls, so RNG streams continue exactly
    /// like a reused single-threaded engine's.
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`, `restarts == 0`, `restarts > 65535`
    /// (the incumbent tag width), or the inner [`SaConfig`] is invalid.
    pub fn with_config(seed: u64, config: MultiConfig, sa: SaConfig) -> Self {
        config.validate();
        let engines = (0..config.restarts)
            .map(|k| Sa::with_config(split_stream(seed, k), sa))
            .collect();
        MultiSa {
            config,
            engines,
            last_incumbent: None,
        }
    }

    /// The active pool configuration.
    pub fn config(&self) -> &MultiConfig {
        &self.config
    }

    /// The shared incumbent's final `(quantized value, seed index)` from
    /// the most recent `map` call (telemetry; the returned mapping is
    /// selected from exact values, see the module docs).
    pub fn last_incumbent(&self) -> Option<(Time, u16)> {
        self.last_incumbent
    }
}

impl Heuristic for MultiSa {
    fn name(&self) -> &'static str {
        "SA-Multi"
    }

    fn map(&mut self, inst: &Instance<'_>, _tb: &mut TieBreaker) -> Mapping {
        let incumbent = Incumbent::new();
        let mapping = run_restarts(
            &mut self.engines,
            self.config.threads,
            self.config.adopt,
            inst,
            &incumbent,
            |engine, start, publish| {
                engine.map_observed_from(
                    inst,
                    &mut TieBreaker::Deterministic,
                    start,
                    |_, _, value| publish(value),
                )
            },
        );
        self.last_incumbent = incumbent.load();
        mapping
    }
}

/// Multi-restart Tabu Search (see the module docs).
#[derive(Clone, Debug)]
pub struct MultiTabu {
    config: MultiConfig,
    engines: Vec<Tabu>,
    last_incumbent: Option<(Time, u16)>,
}

impl MultiTabu {
    /// A multi-restart Tabu with default pool and engine configuration.
    pub fn new(seed: u64) -> Self {
        MultiTabu::with_config(seed, MultiConfig::default(), TabuConfig::default())
    }

    /// A multi-restart Tabu with explicit pool and per-restart
    /// configuration; restart `k` is
    /// `Tabu::with_config(split_stream(seed, k), tabu)`.
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`, `restarts == 0`, `restarts > 65535`, or
    /// the inner [`TabuConfig`] is invalid.
    pub fn with_config(seed: u64, config: MultiConfig, tabu: TabuConfig) -> Self {
        config.validate();
        let engines = (0..config.restarts)
            .map(|k| Tabu::with_config(split_stream(seed, k), tabu))
            .collect();
        MultiTabu {
            config,
            engines,
            last_incumbent: None,
        }
    }

    /// The active pool configuration.
    pub fn config(&self) -> &MultiConfig {
        &self.config
    }

    /// The shared incumbent's final `(quantized value, seed index)` from
    /// the most recent `map` call.
    pub fn last_incumbent(&self) -> Option<(Time, u16)> {
        self.last_incumbent
    }
}

impl Heuristic for MultiTabu {
    fn name(&self) -> &'static str {
        "Tabu-Multi"
    }

    fn map(&mut self, inst: &Instance<'_>, _tb: &mut TieBreaker) -> Mapping {
        let incumbent = Incumbent::new();
        let mapping = run_restarts(
            &mut self.engines,
            self.config.threads,
            self.config.adopt,
            inst,
            &incumbent,
            |engine, start, publish| {
                engine.map_observed_from(
                    inst,
                    &mut TieBreaker::Deterministic,
                    start,
                    |_, _, value| publish(value),
                )
            },
        );
        self.last_incumbent = incumbent.load();
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::{EtcMatrix, Scenario};

    fn scenario() -> Scenario {
        let rows: Vec<Vec<f64>> = (0..18)
            .map(|t| {
                (0..4)
                    .map(|m| (((t * 13 + m * 7) % 19) + 1) as f64)
                    .collect()
            })
            .collect();
        Scenario::with_zero_ready(EtcMatrix::from_rows(&rows).unwrap())
    }

    #[test]
    fn single_thread_single_restart_is_bit_identical_to_sa() {
        let s = scenario();
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut plain = Sa::new(42);
        let mut multi = MultiSa::with_config(
            42,
            MultiConfig {
                threads: 1,
                restarts: 1,
                adopt: true,
            },
            SaConfig::default(),
        );
        let a = plain.map(&inst, &mut TieBreaker::Deterministic);
        let b = multi.map(&inst, &mut TieBreaker::Deterministic);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn single_thread_single_restart_is_bit_identical_to_tabu() {
        let s = scenario();
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut plain = Tabu::new(42);
        let mut multi = MultiTabu::with_config(
            42,
            MultiConfig {
                threads: 1,
                restarts: 1,
                adopt: true,
            },
            TabuConfig::default(),
        );
        let a = plain.map(&inst, &mut TieBreaker::Deterministic);
        let b = multi.map(&inst, &mut TieBreaker::Deterministic);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn deterministic_per_seed_and_thread_count() {
        let s = scenario();
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let run = |threads| {
            let mut multi = MultiSa::with_config(
                7,
                MultiConfig {
                    threads,
                    restarts: 6,
                    adopt: true,
                },
                SaConfig::default(),
            );
            multi.map(&inst, &mut TieBreaker::Deterministic)
        };
        assert_eq!(run(3).order(), run(3).order());
    }

    #[test]
    fn without_adoption_results_are_thread_count_invariant() {
        let s = scenario();
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let run = |threads| {
            let mut multi = MultiTabu::with_config(
                9,
                MultiConfig {
                    threads,
                    restarts: 5,
                    adopt: false,
                },
                TabuConfig::default(),
            );
            multi.map(&inst, &mut TieBreaker::Deterministic)
        };
        let one = run(1);
        assert_eq!(one.order(), run(2).order());
        assert_eq!(one.order(), run(5).order());
    }

    #[test]
    fn multi_restart_is_no_worse_than_restart_zero() {
        let s = scenario();
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let machines = &owned.machines;
        let solo = Sa::new(3)
            .map(&inst, &mut TieBreaker::Deterministic)
            .makespan(&s.etc, &s.initial_ready, machines);
        let mut multi = MultiSa::with_config(
            3,
            MultiConfig {
                threads: 2,
                restarts: 4,
                adopt: false,
            },
            SaConfig::default(),
        );
        let ensemble = multi.map(&inst, &mut TieBreaker::Deterministic).makespan(
            &s.etc,
            &s.initial_ready,
            machines,
        );
        assert!(ensemble <= solo, "ensemble {ensemble} vs solo {solo}");
    }

    #[test]
    fn incumbent_snapshot_is_populated_and_sane() {
        let s = scenario();
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let mut multi = MultiTabu::with_config(
            5,
            MultiConfig {
                threads: 2,
                restarts: 4,
                adopt: true,
            },
            TabuConfig::default(),
        );
        let mapping = multi.map(&inst, &mut TieBreaker::Deterministic);
        let exact = mapping.makespan(&s.etc, &s.initial_ready, &owned.machines);
        let (quantized, seed) = multi.last_incumbent().expect("restarts published");
        assert!(usize::from(seed) < 4);
        // The quantized incumbent can undershoot the exact winner by at
        // most the 2^-36 relative tag truncation; it must never exceed it.
        assert!(quantized <= exact);
        assert!(quantized.get() >= exact.get() * (1.0 - 1e-9));
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_rejected() {
        let _ = MultiSa::with_config(
            0,
            MultiConfig {
                threads: 0,
                restarts: 1,
                adopt: true,
            },
            SaConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_rejected() {
        let _ = MultiTabu::with_config(
            0,
            MultiConfig {
                threads: 1,
                restarts: 0,
                adopt: true,
            },
            TabuConfig::default(),
        );
    }
}
