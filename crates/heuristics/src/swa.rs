//! Switching Algorithm (SWA) — paper §3.5, Figure 13; adapted from
//! Maheswaran et al. \[14\].
//!
//! A hybrid of MCT and MET driven by the **load balance index**
//! `BI = min ready time / max ready time` over the considered machines:
//!
//! 1. the first task in the list is mapped with MCT;
//! 2. after each mapping, BI is recomputed;
//! 3. if `BI > hi` the heuristic switches to MET (the system is balanced —
//!    exploit the fast machines); if `BI < lo` it switches back to MCT
//!    (rebalance); otherwise the current choice persists;
//! 4. the next task is mapped with the currently selected heuristic.
//!
//! When every ready time is zero (before the first mapping, with zero
//! initial ready times) BI is `0/0`; the paper's tables print `x` for this
//! and the selected heuristic stays MCT. We reproduce that: an undefined BI
//! leaves the selection unchanged.
//!
//! The paper's §3.5 example shows SWA increasing its makespan under the
//! iterative technique **even with deterministic ties**: removing the
//! makespan machine changes the BI trajectory, which flips the MET/MCT
//! selection for later tasks.
//!
//! Under a non-makespan [`hcs_core::Objective`], the MCT arm ranks by the
//! objective's marginal cost instead of raw completion time (the MET arm
//! and the BI trajectory are objective-independent — BI is defined on
//! ready times, not scores).

use hcs_core::{
    select, Heuristic, Instance, MachineId, MapWorkspace, Mapping, TaskId, TieBreaker, Time,
};
use serde::{Deserialize, Serialize};

/// Which of the two sub-heuristics SWA used for a task.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwaMode {
    /// Minimum Completion Time.
    Mct,
    /// Minimum Execution Time.
    Met,
}

impl std::fmt::Display for SwaMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwaMode::Mct => write!(f, "MCT"),
            SwaMode::Met => write!(f, "MET"),
        }
    }
}

/// SWA thresholds.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwaConfig {
    /// Switch to MET when `BI > hi`.
    pub hi: f64,
    /// Switch to MCT when `BI < lo`.
    pub lo: f64,
}

impl Default for SwaConfig {
    /// The thresholds of the paper's §3.5 example: `hi = 0.49` (stated in
    /// the text) and `lo = 1/3` (recovered from the example's BI
    /// trajectory; see `hcs-paper`).
    fn default() -> Self {
        SwaConfig {
            hi: 0.49,
            lo: 1.0 / 3.0,
        }
    }
}

/// One step of an SWA trace — enough to regenerate the paper's Tables 10
/// and 11 (BI column, assignment, heuristic column).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwaStep {
    /// The task mapped in this step.
    pub task: TaskId,
    /// The machine it was assigned to.
    pub machine: MachineId,
    /// The balance index observed before mapping this task; `None` is the
    /// table's `x` (undefined, all ready times zero).
    pub bi_before: Option<f64>,
    /// The sub-heuristic used for this task.
    pub mode: SwaMode,
    /// Ready times of the considered machines after this step (ascending
    /// machine order) — the tables' `CT` columns.
    pub ready_after: Vec<(MachineId, Time)>,
}

/// A full SWA trace.
pub type SwaTrace = Vec<SwaStep>;

/// The Switching Algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct Swa {
    /// Thresholds (see [`SwaConfig`]).
    pub config: SwaConfig,
}

impl Swa {
    /// SWA with explicit thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= lo <= hi <= 1`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
            "SWA thresholds must satisfy 0 <= lo <= hi <= 1, got lo={lo}, hi={hi}"
        );
        Swa {
            config: SwaConfig { hi, lo },
        }
    }

    /// Maps the instance and returns the mapping together with the per-step
    /// trace used by the paper's tables.
    pub fn map_traced(&self, inst: &Instance<'_>, tb: &mut TieBreaker) -> (Mapping, SwaTrace) {
        let mut ready = inst.working_ready();
        let mut counts = vec![0u32; inst.etc.n_machines()];
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        let mut trace = Vec::with_capacity(inst.tasks.len());
        let mut mode = SwaMode::Mct; // step 2: first task uses MCT

        for (i, &task) in inst.tasks.iter().enumerate() {
            let bi_before = if i == 0 {
                None
            } else {
                balance_index(inst.machines, &ready)
            };
            if let Some(bi) = bi_before {
                if bi > self.config.hi {
                    mode = SwaMode::Met;
                } else if bi < self.config.lo {
                    mode = SwaMode::Mct;
                }
                // Otherwise: the current heuristic remains selected.
            }

            let (cands, _) = match mode {
                SwaMode::Mct => select::min_candidates(
                    inst.machines
                        .iter()
                        .map(|&m| (m, inst.score(task, m, &ready, counts[m.idx()]))),
                ),
                SwaMode::Met => select::min_candidates(
                    inst.machines.iter().map(|&m| (m, inst.etc.get(task, m))),
                ),
            };
            let machine = cands[tb.pick(cands.len())];
            ready.advance(machine, inst.etc.get(task, machine));
            counts[machine.idx()] += 1;
            mapping
                .assign(task, machine)
                .expect("task list contains no duplicates");
            trace.push(SwaStep {
                task,
                machine,
                bi_before,
                mode,
                ready_after: inst.machines.iter().map(|&m| (m, ready.get(m))).collect(),
            });
        }
        (mapping, trace)
    }
}

/// `min ready / max ready` over `machines`; `None` when the maximum is zero
/// (the paper's undefined `x`).
fn balance_index(machines: &[MachineId], ready: &hcs_core::ReadyTimes) -> Option<f64> {
    balance_index_by(machines, |m| ready.get(m))
}

/// [`balance_index`] against any ready-time source (the workspace path
/// reads a [`MapWorkspace`] instead of a `ReadyTimes`).
fn balance_index_by(machines: &[MachineId], ready_of: impl Fn(MachineId) -> Time) -> Option<f64> {
    let min = machines
        .iter()
        .map(|&m| ready_of(m))
        .min()
        .expect("SWA needs at least one machine");
    let max = machines
        .iter()
        .map(|&m| ready_of(m))
        .max()
        .expect("SWA needs at least one machine");
    (max > Time::ZERO).then(|| min.get() / max.get())
}

impl Heuristic for Swa {
    fn name(&self) -> &'static str {
        "SWA"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_traced(inst, tb).0
    }

    /// The untraced hot path: same mode trajectory and candidate
    /// enumeration as [`Swa::map_traced`] (which stays the naive reference
    /// for the paper-table generators), but selecting through the
    /// workspace's reusable buffers and skipping trace bookkeeping.
    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        ws.begin(inst);
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        let mut mode = SwaMode::Mct; // step 2: first task uses MCT

        for (i, &task) in inst.tasks.iter().enumerate() {
            let bi_before = if i == 0 {
                None
            } else {
                balance_index_by(inst.machines, |m| ws.ready_of(m))
            };
            if let Some(bi) = bi_before {
                if bi > self.config.hi {
                    mode = SwaMode::Met;
                } else if bi < self.config.lo {
                    mode = SwaMode::Mct;
                }
            }

            let (cands, _) = match mode {
                SwaMode::Mct => ws.min_ct_candidates(inst, task),
                SwaMode::Met => ws.min_etc_candidates(inst, task),
            };
            let machine = cands[tb.pick(cands.len())];
            ws.advance(machine, inst.etc.get(task, machine));
            ws.trace_commit(task, machine);
            mapping
                .assign(task, machine)
                .expect("task list contains no duplicates");
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, Scenario};

    fn traced(s: &Scenario, swa: Swa) -> (Mapping, SwaTrace) {
        let owned = s.full_instance();
        swa.map_traced(&owned.as_instance(s), &mut TieBreaker::Deterministic)
    }

    #[test]
    fn first_task_uses_mct_and_bi_undefined() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 1.0], vec![2.0, 1.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (_, trace) = traced(&s, Swa::default());
        assert_eq!(trace[0].mode, SwaMode::Mct);
        assert_eq!(trace[0].bi_before, None);
        assert_eq!(trace[0].machine, m(1)); // MCT: ETC 1 < 2
    }

    #[test]
    fn switches_to_met_when_balanced() {
        // After t0 -> m1 (CT 1) and t1 -> m0 via MCT? Construct: two
        // machines; t0 ETC (1, 1): MCT tie -> m0, ready (1, 0), BI = 0 ->
        // MCT for t1; t1 ETC (5, 1) -> m1, ready (1, 1), BI = 1 > hi ->
        // MET for t2; t2 ETC (10, 1): MET -> m1 even though m0's CT would
        // tie MET's.
        let etc = EtcMatrix::from_rows(&[vec![1.0, 1.0], vec![5.0, 1.0], vec![10.0, 1.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (map, trace) = traced(&s, Swa::default());
        assert_eq!(trace[1].bi_before, Some(0.0));
        assert_eq!(trace[1].mode, SwaMode::Mct);
        assert_eq!(trace[2].bi_before, Some(1.0));
        assert_eq!(trace[2].mode, SwaMode::Met);
        assert_eq!(map.machine_of(t(2)), Some(m(1)));
    }

    #[test]
    fn switches_back_to_mct_when_unbalanced() {
        let swa = Swa::new(0.2, 0.49);
        // Engineer BI to rise above hi then fall below lo.
        // t0 ETC (1,1) -> m0 (MCT tie), ready (1,0), BI 0 < lo -> MCT.
        // t1 ETC (9,1) -> m1 (MCT), ready (1,1), BI 1 > hi -> MET.
        // t2 ETC (1,9): MET -> m0, ready (2,1), BI 0.5: between -> stays MET.
        // t3 ETC (8,9): MET -> m0, ready (10,1), BI 0.1 < lo -> MCT for t4.
        // t4 ETC (9,1): MCT -> m1.
        let etc = EtcMatrix::from_rows(&[
            vec![1.0, 1.0],
            vec![9.0, 1.0],
            vec![1.0, 9.0],
            vec![8.0, 9.0],
            vec![9.0, 1.0],
        ])
        .unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (map, trace) = traced(&s, swa);
        assert_eq!(trace[2].mode, SwaMode::Met);
        assert_eq!(trace[3].mode, SwaMode::Met);
        assert_eq!(trace[4].mode, SwaMode::Mct);
        assert_eq!(map.machine_of(t(4)), Some(m(1)));
    }

    #[test]
    fn undefined_bi_keeps_current_mode() {
        // Zero-ETC first task leaves all ready times at zero: BI stays
        // undefined for the second task too, and the mode stays MCT.
        let etc = EtcMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (_, trace) = traced(&s, Swa::default());
        assert_eq!(trace[1].bi_before, None);
        assert_eq!(trace[1].mode, SwaMode::Mct);
    }

    #[test]
    fn trace_ready_columns_accumulate() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 9.0], vec![9.0, 3.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (_, trace) = traced(&s, Swa::default());
        assert_eq!(
            trace[0].ready_after,
            vec![(m(0), Time::new(2.0)), (m(1), Time::ZERO)]
        );
        assert_eq!(
            trace[1].ready_after,
            vec![(m(0), Time::new(2.0)), (m(1), Time::new(3.0))]
        );
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn bad_thresholds_rejected() {
        let _ = Swa::new(0.9, 0.2);
    }
}
