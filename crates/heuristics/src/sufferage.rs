//! Sufferage — paper §3.7, Figure 17; adapted from refs \[4, 14\].
//!
//! A batch heuristic built on the *sufferage value* of a task: how much the
//! task would suffer (in completion time) if it did not get its favourite
//! machine — the second-earliest completion time minus the earliest.
//!
//! While unmapped tasks remain, run a **pass**:
//!
//! 1. mark all machines unassigned;
//! 2. for each task `t_k` still in the list `L` (in order):
//!    * find the machine `m_j` with the earliest completion time
//!      (machine ties go through the [`TieBreaker`]);
//!    * compute the sufferage value;
//!    * if `m_j` is unassigned, tentatively give it `t_k`;
//!    * otherwise, if the incumbent task's sufferage is **less than**
//!      `t_k`'s, displace the incumbent (it returns to `L`) and give `m_j`
//!      to `t_k`; on an equal or greater sufferage the incumbent stays;
//! 3. commit the tentative assignments, advance ready times, and start the
//!    next pass.
//!
//! A task whose only machine option disappears mid-pass (all its candidate
//! machines taken by stronger incumbents) simply waits for the next pass —
//! this is what gives Sufferage its limited local search flavour. With a
//! single machine the second-earliest completion time does not exist; the
//! sufferage value is defined as zero (the task cannot suffer when there is
//! no alternative).
//!
//! The paper's §3.7 example shows Sufferage increasing its makespan under
//! the iterative technique even with deterministic ties.
//!
//! Under a non-makespan [`hcs_core::Objective`] both the favourite machine
//! and the sufferage value are computed from the objective's marginal cost
//! instead of raw completion time (for makespan they coincide — `min CT`
//! in the tables is the makespan marginal).

use hcs_core::{
    select, Heuristic, Instance, MachineId, MapWorkspace, Mapping, TaskId, TieBreaker, Time,
};
use serde::{Deserialize, Serialize};

/// What happened when a task was evaluated within a pass.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SufferageAction {
    /// The task took a free machine.
    Assigned,
    /// The task displaced the named incumbent (higher sufferage wins).
    Displaced(TaskId),
    /// The machine's incumbent had greater-or-equal sufferage; the task
    /// waits for the next pass.
    Rejected,
}

/// One task evaluation within a pass — a row of the paper's Tables 16/17.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SufferageEval {
    /// The evaluated task.
    pub task: TaskId,
    /// Its earliest-completion machine for this pass.
    pub machine: MachineId,
    /// The earliest completion time ("min CT" column).
    pub min_ct: Time,
    /// The sufferage value column.
    pub sufferage: Time,
    /// Outcome of the evaluation.
    pub action: SufferageAction,
}

/// One pass: the evaluations in order plus the committed assignments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SufferagePass {
    /// Task evaluations in list order.
    pub evals: Vec<SufferageEval>,
    /// `(task, machine)` pairs committed at the end of the pass.
    pub commits: Vec<(TaskId, MachineId)>,
}

/// The Sufferage heuristic (stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct Sufferage;

impl Sufferage {
    /// Maps the instance and returns the per-pass trace used to regenerate
    /// the paper's Tables 16 and 17.
    pub fn map_traced(
        &self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
    ) -> (Mapping, Vec<SufferagePass>) {
        let mut list: Vec<TaskId> = inst.tasks.to_vec();
        let mut ready = inst.working_ready();
        let mut counts = vec![0u32; inst.etc.n_machines()];
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        let mut passes = Vec::new();

        while !list.is_empty() {
            // Tentative winner per machine: (task, its sufferage value).
            let mut tentative: Vec<(MachineId, TaskId, Time)> = Vec::new();
            let mut evals = Vec::new();
            let snapshot = list.clone();

            for &task in &snapshot {
                let (machine_cands, min_ct) = select::min_candidates(
                    inst.machines
                        .iter()
                        .map(|&m| (m, inst.score(task, m, &ready, counts[m.idx()]))),
                );
                let machine = machine_cands[tb.pick(machine_cands.len())];
                let (_, second) = select::two_smallest(
                    inst.machines
                        .iter()
                        .map(|&m| inst.score(task, m, &ready, counts[m.idx()])),
                );
                let sufferage = second.map_or(Time::ZERO, |s| s - min_ct);

                let action = match tentative.iter_mut().find(|(m, _, _)| *m == machine) {
                    None => {
                        tentative.push((machine, task, sufferage));
                        SufferageAction::Assigned
                    }
                    Some(entry) => {
                        let (_, incumbent, incumbent_suff) = *entry;
                        if incumbent_suff < sufferage {
                            entry.1 = task;
                            entry.2 = sufferage;
                            SufferageAction::Displaced(incumbent)
                        } else {
                            SufferageAction::Rejected
                        }
                    }
                };
                evals.push(SufferageEval {
                    task,
                    machine,
                    min_ct,
                    sufferage,
                    action,
                });
            }

            // Commit the pass: update ready times, remove winners from L.
            let mut commits = Vec::with_capacity(tentative.len());
            for &(machine, task, _) in &tentative {
                ready.advance(machine, inst.etc.get(task, machine));
                counts[machine.idx()] += 1;
                mapping
                    .assign(task, machine)
                    .expect("a task wins at most one machine per pass");
                list.retain(|&t| t != task);
                commits.push((task, machine));
            }
            debug_assert!(!commits.is_empty(), "every pass commits at least one task");
            passes.push(SufferagePass { evals, commits });
        }
        (mapping, passes)
    }
}

impl Heuristic for Sufferage {
    fn name(&self) -> &'static str {
        "Sufferage"
    }

    fn map(&mut self, inst: &Instance<'_>, tb: &mut TieBreaker) -> Mapping {
        self.map_traced(inst, tb).0
    }

    /// The untraced hot path. Each pass enumerates the instance task list
    /// filtered by the workspace's O(1) unmapped membership — the same
    /// sequence as the naive list snapshot in [`Sufferage::map_traced`]
    /// (which stays the naive reference), because `retain` preserves
    /// task-list order. Candidate sets, tie-break counts and the pass
    /// commit order are identical; only the allocations are gone.
    fn map_with(
        &mut self,
        inst: &Instance<'_>,
        tb: &mut TieBreaker,
        ws: &mut MapWorkspace,
    ) -> Mapping {
        ws.begin(inst);
        ws.activate(inst.tasks);
        let mut mapping = Mapping::new(inst.etc.n_tasks());
        let mut tentative = ws.take_winner_buf();

        while ws.has_unmapped() {
            tentative.clear();
            for &task in inst.tasks {
                if !ws.is_unmapped(task) {
                    continue;
                }
                let (machine_cands, min_ct) = ws.min_ct_candidates(inst, task);
                let machine = machine_cands[tb.pick(machine_cands.len())];
                let (_, second) = ws.two_smallest_ct(inst, task);
                let sufferage = second.map_or(Time::ZERO, |s| s - min_ct);

                match tentative.iter_mut().find(|(m, _, _)| *m == machine) {
                    None => tentative.push((machine, task, sufferage)),
                    Some(entry) => {
                        if entry.2 < sufferage {
                            entry.1 = task;
                            entry.2 = sufferage;
                        }
                    }
                }
            }

            for &(machine, task, _) in &tentative {
                ws.advance(machine, inst.etc.get(task, machine));
                ws.trace_commit(task, machine);
                mapping
                    .assign(task, machine)
                    .expect("a task wins at most one machine per pass");
                ws.remove(task);
            }
            debug_assert!(
                !tentative.is_empty(),
                "every pass commits at least one task"
            );
        }
        ws.give_winner_buf(tentative);
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::id::{m, t};
    use hcs_core::{EtcMatrix, Scenario};

    fn traced(s: &Scenario) -> (Mapping, Vec<SufferagePass>) {
        let owned = s.full_instance();
        Sufferage.map_traced(&owned.as_instance(s), &mut TieBreaker::Deterministic)
    }

    #[test]
    fn high_sufferage_task_displaces_low() {
        // Both tasks prefer m0; t1 suffers much more if denied (9-1=8 vs
        // 3-2=1), so t1 displaces t0 and t0 is committed next pass.
        let etc = EtcMatrix::from_rows(&[vec![2.0, 3.0], vec![1.0, 9.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (map, passes) = traced(&s);
        assert_eq!(map.machine_of(t(1)), Some(m(0)));
        assert_eq!(passes[0].evals[1].action, SufferageAction::Displaced(t(0)));
        // t0 waits a pass; then CT(t0, m0) = 1+2 = 3 ties CT(t0, m1) = 3
        // and the deterministic tie-break picks the lower index, m0.
        assert_eq!(passes.len(), 2);
        assert_eq!(map.machine_of(t(0)), Some(m(0)));
    }

    #[test]
    fn equal_sufferage_keeps_incumbent() {
        let etc = EtcMatrix::from_rows(&[vec![1.0, 5.0], vec![1.0, 5.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (_, passes) = traced(&s);
        assert_eq!(passes[0].evals[0].action, SufferageAction::Assigned);
        assert_eq!(passes[0].evals[1].action, SufferageAction::Rejected);
        assert_eq!(passes[0].commits, vec![(t(0), m(0))]);
    }

    #[test]
    fn different_favourites_commit_in_one_pass() {
        let etc = EtcMatrix::from_rows(&[vec![1.0, 9.0], vec![9.0, 1.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (map, passes) = traced(&s);
        assert_eq!(passes.len(), 1);
        assert_eq!(map.machine_of(t(0)), Some(m(0)));
        assert_eq!(map.machine_of(t(1)), Some(m(1)));
    }

    #[test]
    fn sufferage_values_match_definition() {
        let etc = EtcMatrix::from_rows(&[vec![2.0, 7.0, 4.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (_, passes) = traced(&s);
        let eval = &passes[0].evals[0];
        assert_eq!(eval.min_ct, Time::new(2.0));
        assert_eq!(eval.sufferage, Time::new(2.0)); // 4 - 2
        assert_eq!(eval.machine, m(0));
    }

    #[test]
    fn single_machine_sufferage_is_zero_and_terminates() {
        let etc = EtcMatrix::from_rows(&[vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (map, passes) = traced(&s);
        assert_eq!(map.len(), 3);
        // One commit per pass (one machine), so three passes.
        assert_eq!(passes.len(), 3);
        for p in &passes {
            assert_eq!(p.commits.len(), 1);
            assert!(p.evals.iter().all(|e| e.sufferage == Time::ZERO));
        }
    }

    #[test]
    fn maps_every_task_exactly_once_on_larger_instance() {
        let etc = EtcMatrix::from_rows(&[
            vec![4.0, 2.0, 7.0],
            vec![1.0, 8.0, 8.0],
            vec![6.0, 3.0, 2.0],
            vec![5.0, 5.0, 5.0],
            vec![2.0, 9.0, 4.0],
            vec![3.0, 1.0, 6.0],
        ])
        .unwrap();
        let s = Scenario::with_zero_ready(etc);
        let (map, _) = traced(&s);
        assert_eq!(map.len(), 6);
        map.validate(&s.etc.task_vec(), &s.etc.machine_vec())
            .unwrap();
    }
}
