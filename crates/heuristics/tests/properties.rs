//! Property-based invariants of the mapping heuristics, including the
//! golden-equivalence suite: every workspace-backed heuristic must produce
//! bit-identical mappings (assignments *and* assignment order) to its
//! naive reference twin in [`hcs_heuristics::reference`], under both tie
//! policies, while consuming the tie-breaker stream identically.

use hcs_core::{
    iterative, EtcMatrix, Heuristic, MapWorkspace, Mapping, Scenario, TieBreaker, Time,
};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use hcs_heuristics::{
    all_heuristics, reference, Duplex, Kpb, MaxMin, Mct, Met, MinMin, Sa, Sufferage,
};
use proptest::prelude::*;

/// Random continuous matrices (tie-free in practice).
fn continuous_etc() -> impl Strategy<Value = EtcMatrix> {
    (2usize..=6, 1usize..=14).prop_flat_map(|(m, t)| {
        proptest::collection::vec(0.5f64..100.0, t * m).prop_map(move |values| {
            EtcMatrix::new(t, m, &values).expect("strategy produces valid values")
        })
    })
}

/// Random small-integer matrices (tie-rich).
fn integer_etc() -> impl Strategy<Value = EtcMatrix> {
    (2usize..=5, 1usize..=10).prop_flat_map(|(m, t)| {
        proptest::collection::vec(1u32..=5, t * m).prop_map(move |values| {
            let flat: Vec<f64> = values.into_iter().map(f64::from).collect();
            EtcMatrix::new(t, m, &flat).expect("strategy produces valid values")
        })
    })
}

/// Random Braun-class matrices: all 12 consistency × heterogeneity classes,
/// study-sized dimensions, generated through `hcs-etcgen` like the
/// Monte-Carlo studies.
fn braun_etc() -> impl Strategy<Value = EtcMatrix> {
    (1usize..=14, 2usize..=6, 0u8..12, 0u64..1_000_000).prop_map(|(t, m, class, seed)| {
        let consistency = match class % 3 {
            0 => Consistency::Consistent,
            1 => Consistency::SemiConsistent,
            _ => Consistency::Inconsistent,
        };
        let hetero = |hi| {
            if hi {
                Heterogeneity::Hi
            } else {
                Heterogeneity::Lo
            }
        };
        let spec = EtcSpec::braun(
            t,
            m,
            consistency,
            hetero((class / 3) % 2 == 0),
            hetero(class / 6 == 0),
        );
        spec.generate(seed)
    })
}

fn map_full(h: &mut dyn Heuristic, s: &Scenario, tb: &mut TieBreaker) -> Mapping {
    let owned = s.full_instance();
    h.map(&owned.as_instance(s), tb)
}

/// The golden-equivalence check: for every roster heuristic, the
/// workspace-backed `map_with` (sharing ONE reused workspace across all of
/// them — reuse is part of the contract) must equal the naive twin's `map`,
/// and both must leave the tie-breaker stream in the same state.
fn assert_golden_equivalence(etc: EtcMatrix, seed: u64) -> Result<(), TestCaseError> {
    let s = Scenario::with_zero_ready(etc);
    let owned = s.full_instance();
    let inst = owned.as_instance(&s);
    let mut ws = MapWorkspace::new();
    for mut fast in all_heuristics() {
        let mut naive = reference::naive_by_name(fast.name())
            .expect("every roster heuristic has a naive reference twin");
        for (mut tb_fast, mut tb_naive) in [
            (TieBreaker::Deterministic, TieBreaker::Deterministic),
            (TieBreaker::random(seed), TieBreaker::random(seed)),
        ] {
            let want = naive.map(&inst, &mut tb_naive);
            let got = fast.map_with(&inst, &mut tb_fast, &mut ws);
            prop_assert_eq!(want.order(), got.order(), "{}", fast.name());
            // Both runs must have consumed the same amount of randomness,
            // or the theorems' bit-for-bit reproducibility breaks silently.
            prop_assert_eq!(tb_naive.pick(97), tb_fast.pick(97), "{}", fast.name());
        }
    }
    Ok(())
}

/// `max_t min_m ETC(t, m)` — no mapping can beat the best placement of the
/// hardest task.
fn makespan_lower_bound(s: &Scenario) -> Time {
    s.etc
        .tasks()
        .map(|t| {
            s.etc
                .machines()
                .map(|m| s.etc.get(t, m))
                .min()
                .expect("at least one machine")
        })
        .max()
        .expect("at least one task")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every heuristic maps every task exactly once onto an active machine,
    /// under both tie policies.
    #[test]
    fn mappings_are_complete_and_valid(etc in integer_etc(), seed in 0u64..1000) {
        let s = Scenario::with_zero_ready(etc);
        let tasks = s.etc.task_vec();
        let machines = s.etc.machine_vec();
        for mut h in all_heuristics() {
            for mut tb in [TieBreaker::Deterministic, TieBreaker::random(seed)] {
                let map = map_full(&mut *h, &s, &mut tb);
                prop_assert!(map.validate(&tasks, &machines).is_ok(), "{}", h.name());
                prop_assert_eq!(map.len(), tasks.len(), "{}", h.name());
            }
        }
    }

    /// No heuristic beats the trivial lower bound, and none is worse than
    /// serializing everything on one machine.
    #[test]
    fn makespans_are_sane(etc in continuous_etc()) {
        let s = Scenario::with_zero_ready(etc);
        let machines = s.etc.machine_vec();
        let lb = makespan_lower_bound(&s);
        let worst: Time = s
            .etc
            .tasks()
            .map(|t| {
                s.etc
                    .machines()
                    .map(|m| s.etc.get(t, m))
                    .max()
                    .expect("machines")
            })
            .sum();
        for mut h in all_heuristics() {
            let mut tb = TieBreaker::Deterministic;
            let ms = map_full(&mut *h, &s, &mut tb).makespan(&s.etc, &s.initial_ready, &machines);
            prop_assert!(ms >= lb, "{}: {ms} below lower bound {lb}", h.name());
            prop_assert!(ms <= worst, "{}: {ms} above serial bound {worst}", h.name());
        }
    }

    /// KPB with k = 100% is exactly MCT (the paper's §3.6 remark), on any
    /// workload, under deterministic ties.
    #[test]
    fn kpb_100_equals_mct(etc in integer_etc()) {
        let s = Scenario::with_zero_ready(etc);
        let a = map_full(&mut Kpb::new(100.0), &s, &mut TieBreaker::Deterministic);
        let b = map_full(&mut Mct, &s, &mut TieBreaker::Deterministic);
        prop_assert_eq!(a.order(), b.order());
    }

    /// KPB with k = 100/|M| is exactly MET (the other §3.6 remark) on
    /// tie-free workloads (with ties the two enumerate candidates
    /// differently).
    #[test]
    fn kpb_min_equals_met_without_ties(etc in continuous_etc()) {
        let s = Scenario::with_zero_ready(etc);
        let k = 100.0 / s.etc.n_machines() as f64;
        let a = map_full(&mut Kpb::new(k), &s, &mut TieBreaker::Deterministic);
        let b = map_full(&mut Met, &s, &mut TieBreaker::Deterministic);
        for t in s.etc.tasks() {
            prop_assert_eq!(a.machine_of(t), b.machine_of(t));
        }
    }

    /// Duplex is never worse than either parent.
    #[test]
    fn duplex_dominates_parents(etc in continuous_etc()) {
        let s = Scenario::with_zero_ready(etc);
        let machines = s.etc.machine_vec();
        let mut tb = TieBreaker::Deterministic;
        let d = map_full(&mut Duplex, &s, &mut tb).makespan(&s.etc, &s.initial_ready, &machines);
        let mut tb = TieBreaker::Deterministic;
        let mn = map_full(&mut MinMin, &s, &mut tb).makespan(&s.etc, &s.initial_ready, &machines);
        let mut tb = TieBreaker::Deterministic;
        let mx = map_full(&mut MaxMin, &s, &mut tb).makespan(&s.etc, &s.initial_ready, &machines);
        prop_assert!(d <= mn && d <= mx);
    }

    /// Sufferage terminates and commits at least one task per pass.
    #[test]
    fn sufferage_pass_structure(etc in integer_etc()) {
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let mut tb = TieBreaker::Deterministic;
        let (map, passes) = Sufferage.map_traced(&owned.as_instance(&s), &mut tb);
        prop_assert_eq!(map.len(), s.etc.n_tasks());
        prop_assert!(passes.len() <= s.etc.n_tasks());
        for pass in &passes {
            prop_assert!(!pass.commits.is_empty());
            // One commit per machine at most.
            let mut machines: Vec<_> = pass.commits.iter().map(|&(_, m)| m).collect();
            machines.sort_unstable();
            machines.dedup();
            prop_assert_eq!(machines.len(), pass.commits.len());
        }
    }

    /// SA never returns a mapping worse than MCT by more than the search
    /// could explain — concretely: it is always a valid complete mapping
    /// and respects the serial upper bound.
    #[test]
    fn sa_is_valid_and_bounded(etc in continuous_etc(), seed in 0u64..100) {
        let s = Scenario::with_zero_ready(etc);
        let machines = s.etc.machine_vec();
        let mut sa = Sa::new(seed);
        let mut tb = TieBreaker::Deterministic;
        let map = map_full(&mut sa, &s, &mut tb);
        prop_assert!(map.validate(&s.etc.task_vec(), &machines).is_ok());
        let ms = map.makespan(&s.etc, &s.initial_ready, &machines);
        prop_assert!(ms >= makespan_lower_bound(&s));
    }

    /// Deterministic runs are pure: same inputs, same mapping, for every
    /// stateless heuristic.
    #[test]
    fn deterministic_runs_are_reproducible(etc in integer_etc()) {
        let s = Scenario::with_zero_ready(etc);
        for (mut h1, mut h2) in all_heuristics().into_iter().zip(all_heuristics()) {
            let a = map_full(&mut *h1, &s, &mut TieBreaker::Deterministic);
            let b = map_full(&mut *h2, &s, &mut TieBreaker::Deterministic);
            prop_assert_eq!(a.order(), b.order(), "{}", h1.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Golden equivalence on Braun-class workloads (continuous,
    /// mostly tie-free): workspace == naive, both tie policies.
    #[test]
    fn workspace_matches_naive_reference_on_braun_classes(
        etc in braun_etc(),
        seed in 0u64..1000,
    ) {
        assert_golden_equivalence(etc, seed)?;
    }

    /// Golden equivalence on tie-rich small-integer workloads, where the
    /// canonical candidate order actually decides assignments.
    #[test]
    fn workspace_matches_naive_reference_on_tie_rich_workloads(
        etc in integer_etc(),
        seed in 0u64..1000,
    ) {
        assert_golden_equivalence(etc, seed)?;
    }

    /// End to end: the workspace-threaded iterative driver over the fast
    /// heuristic equals the plain driver over the naive twin — every round,
    /// every finishing time.
    #[test]
    fn iterative_driver_matches_naive_reference(etc in integer_etc(), seed in 0u64..500) {
        let s = Scenario::with_zero_ready(etc);
        let mut ws = MapWorkspace::new();
        for mut fast in all_heuristics() {
            let mut naive = reference::naive_by_name(fast.name())
                .expect("every roster heuristic has a naive reference twin");
            let a = iterative::IterativeRun::new(&mut *fast, &s)
                .tie_breaker(TieBreaker::random(seed))
                .workspace(&mut ws)
                .execute()
                .unwrap();
            let b = iterative::IterativeRun::new(&mut naive, &s)
                .tie_breaker(TieBreaker::random(seed))
                .execute()
                .unwrap();
            prop_assert_eq!(a, b, "{}", fast.name());
        }
    }
}
