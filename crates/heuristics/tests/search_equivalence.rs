//! Golden-equivalence suite for the delta-evaluation search kernel: the
//! [`LoadTracker`]-backed SA and Tabu must reproduce their pre-kernel
//! naive twins ([`reference::NaiveSa`], [`reference::NaiveTabu`])
//! bit-for-bit — final mappings, every accepted-move makespan, and every
//! intermediate load vector — for identical seeds under both tie
//! policies, including through the full `IterativeRun` loop. A separate
//! drift property checks the incrementally-maintained loads against a
//! from-scratch recomputation after every accepted move.

use hcs_core::{iterative, EtcMatrix, Instance, LoadTracker, Scenario, TieBreaker, Time};
use hcs_etcgen::{Consistency, EtcSpec, Heterogeneity};
use hcs_heuristics::{reference, Sa, SaConfig, Tabu, TabuConfig};
use proptest::prelude::*;

/// Random continuous matrices (tie-free in practice, inexact arithmetic).
fn continuous_etc() -> impl Strategy<Value = EtcMatrix> {
    (2usize..=6, 1usize..=14).prop_flat_map(|(m, t)| {
        proptest::collection::vec(0.5f64..100.0, t * m).prop_map(move |values| {
            EtcMatrix::new(t, m, &values).expect("strategy produces valid values")
        })
    })
}

/// Random small-integer matrices (tie-rich, exact f64 arithmetic).
fn integer_etc() -> impl Strategy<Value = EtcMatrix> {
    (2usize..=5, 1usize..=10).prop_flat_map(|(m, t)| {
        proptest::collection::vec(1u32..=5, t * m).prop_map(move |values| {
            let flat: Vec<f64> = values.into_iter().map(f64::from).collect();
            EtcMatrix::new(t, m, &flat).expect("strategy produces valid values")
        })
    })
}

/// Random Braun-class matrices via `hcs-etcgen`, like the studies.
fn braun_etc() -> impl Strategy<Value = EtcMatrix> {
    (1usize..=14, 2usize..=6, 0u8..12, 0u64..1_000_000).prop_map(|(t, m, class, seed)| {
        let consistency = match class % 3 {
            0 => Consistency::Consistent,
            1 => Consistency::SemiConsistent,
            _ => Consistency::Inconsistent,
        };
        let hetero = |hi| {
            if hi {
                Heterogeneity::Hi
            } else {
                Heterogeneity::Lo
            }
        };
        let spec = EtcSpec::braun(
            t,
            m,
            consistency,
            hetero((class / 3) % 2 == 0),
            hetero(class / 6 == 0),
        );
        spec.generate(seed)
    })
}

/// Shrunk search budgets so a proptest case stays fast; every parameter
/// still exercises both accept paths (greedy and thermal for SA, short and
/// long hops for Tabu).
fn quick_sa() -> SaConfig {
    SaConfig {
        max_steps: 1_500,
        sweep: 16,
        ..SaConfig::default()
    }
}

fn quick_tabu() -> TabuConfig {
    TabuConfig {
        max_hops: 150,
        ..TabuConfig::default()
    }
}

/// One observed trajectory: the makespan and full load vector at the start
/// state and after every accepted move.
type Trajectory = Vec<(Vec<Time>, Time)>;

fn record(traj: &mut Trajectory) -> impl FnMut(&[usize], &[Time], Time) + '_ {
    |_, loads, makespan| traj.push((loads.to_vec(), makespan))
}

fn assert_search_equivalence(etc: EtcMatrix, seed: u64, minmin: bool) -> Result<(), TestCaseError> {
    let s = Scenario::with_zero_ready(etc);
    let owned = s.full_instance();
    let inst = owned.as_instance(&s);
    for tb_seed in [None, Some(seed)] {
        let tb = |s: Option<u64>| match s {
            None => TieBreaker::Deterministic,
            Some(x) => TieBreaker::random(x),
        };

        // SA: delta vs naive, bit-for-bit.
        let sa_config = SaConfig {
            seed_minmin: minmin,
            ..quick_sa()
        };
        let (mut fast_traj, mut naive_traj) = (Trajectory::new(), Trajectory::new());
        let fast = Sa::with_config(seed, sa_config).map_observed(
            &inst,
            &mut tb(tb_seed),
            record(&mut fast_traj),
        );
        let naive = reference::NaiveSa::with_config(seed, sa_config).map_observed(
            &inst,
            &mut tb(tb_seed),
            record(&mut naive_traj),
        );
        prop_assert_eq!(fast.order(), naive.order(), "SA final mapping");
        prop_assert_eq!(&fast_traj, &naive_traj, "SA trajectory");

        // Tabu: delta vs naive, bit-for-bit.
        let (mut fast_traj, mut naive_traj) = (Trajectory::new(), Trajectory::new());
        let fast = Tabu::with_config(seed, quick_tabu()).map_observed(
            &inst,
            &mut tb(tb_seed),
            record(&mut fast_traj),
        );
        let naive = reference::NaiveTabu::with_config(seed, quick_tabu()).map_observed(
            &inst,
            &mut tb(tb_seed),
            record(&mut naive_traj),
        );
        prop_assert_eq!(fast.order(), naive.order(), "Tabu final mapping");
        prop_assert_eq!(&fast_traj, &naive_traj, "Tabu trajectory");
    }
    Ok(())
}

/// From-scratch loads for an assignment, in the canonical accumulation
/// order (ready time, then ETCs in task-position order).
fn scratch_loads(inst: &Instance<'_>, assign: &[usize]) -> Vec<Time> {
    let mut loads: Vec<Time> = inst.machines.iter().map(|&m| inst.ready.get(m)).collect();
    for (pos, &mi) in assign.iter().enumerate() {
        loads[mi] += inst.etc.get(inst.tasks[pos], inst.machines[mi]);
    }
    loads
}

/// Incremental loads may drift from a from-scratch recomputation only by
/// accumulated f64 rounding; `exact` demands bitwise equality (integer
/// workloads, where every operation is exact).
fn assert_no_drift(
    inst: &Instance<'_>,
    assign: &[usize],
    loads: &[Time],
    exact: bool,
) -> Result<(), TestCaseError> {
    let expect = scratch_loads(inst, assign);
    prop_assert_eq!(expect.len(), loads.len());
    for (mi, (&want, &got)) in expect.iter().zip(loads.iter()).enumerate() {
        if exact {
            prop_assert_eq!(want, got, "machine {}", mi);
        } else {
            let tol = 1e-9 * want.get().abs().max(1.0);
            prop_assert!(
                (want.get() - got.get()).abs() <= tol,
                "machine {}: incremental {} vs scratch {}",
                mi,
                got,
                want
            );
        }
    }
    Ok(())
}

fn assert_loads_track_scratch(etc: EtcMatrix, seed: u64, exact: bool) -> Result<(), TestCaseError> {
    let s = Scenario::with_zero_ready(etc);
    let owned = s.full_instance();
    let inst = owned.as_instance(&s);
    let mut failure = None;
    let mut check = |assign: &[usize], loads: &[Time], _ms: Time| {
        if failure.is_none() {
            if let Err(e) = assert_no_drift(&inst, assign, loads, exact) {
                failure = Some(e);
            }
        }
    };
    let _ = Sa::with_config(seed, quick_sa()).map_observed(
        &inst,
        &mut TieBreaker::Deterministic,
        &mut check,
    );
    if let Some(e) = failure {
        return Err(e);
    }
    let mut failure = None;
    let mut check = |assign: &[usize], loads: &[Time], _ms: Time| {
        if failure.is_none() {
            if let Err(e) = assert_no_drift(&inst, assign, loads, exact) {
                failure = Some(e);
            }
        }
    };
    let _ = Tabu::with_config(seed, quick_tabu()).map_observed(
        &inst,
        &mut TieBreaker::Deterministic,
        &mut check,
    );
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Delta SA/Tabu equal their naive twins on continuous workloads.
    #[test]
    fn search_matches_reference_continuous(etc in continuous_etc(), seed in 0u64..1000) {
        assert_search_equivalence(etc, seed, false)?;
    }

    /// ... and on tie-rich integer workloads (exact arithmetic).
    #[test]
    fn search_matches_reference_integer(etc in integer_etc(), seed in 0u64..1000) {
        assert_search_equivalence(etc, seed, false)?;
    }

    /// ... and on Braun-class study workloads, with the Min-Min seed on
    /// (exercising SA's seeded start).
    #[test]
    fn search_matches_reference_braun(etc in braun_etc(), seed in 0u64..1000) {
        assert_search_equivalence(etc, seed, true)?;
    }

    /// The tracker's incrementally-maintained load vectors equal a
    /// from-scratch recomputation after every accepted move: bitwise on
    /// integer workloads, within accumulated-rounding tolerance on
    /// continuous ones.
    #[test]
    fn loads_never_drift_integer(etc in integer_etc(), seed in 0u64..1000) {
        assert_loads_track_scratch(etc, seed, true)?;
    }

    #[test]
    fn loads_never_drift_continuous(etc in continuous_etc(), seed in 0u64..1000) {
        assert_loads_track_scratch(etc, seed, false)?;
    }

    /// End to end: the delta-kernel SA/Tabu driven through the full
    /// iterative loop equal the naive twins — every round, every
    /// finishing time, both tie policies.
    #[test]
    fn iterative_driver_matches_naive_search(etc in integer_etc(), seed in 0u64..500) {
        let s = Scenario::with_zero_ready(etc);
        for tb_seed in [None, Some(seed)] {
            let tb = |s: Option<u64>| match s {
                None => TieBreaker::Deterministic,
                Some(x) => TieBreaker::random(x),
            };
            let mut fast = Sa::with_config(seed, quick_sa());
            let mut naive = reference::NaiveSa::with_config(seed, quick_sa());
            let a = iterative::IterativeRun::new(&mut fast, &s)
                .tie_breaker(tb(tb_seed))
                .execute()
                .unwrap();
            let b = iterative::IterativeRun::new(&mut naive, &s)
                .tie_breaker(tb(tb_seed))
                .execute()
                .unwrap();
            prop_assert_eq!(a, b, "SA iterative");

            let mut fast = Tabu::with_config(seed, quick_tabu());
            let mut naive = reference::NaiveTabu::with_config(seed, quick_tabu());
            let a = iterative::IterativeRun::new(&mut fast, &s)
                .tie_breaker(tb(tb_seed))
                .execute()
                .unwrap();
            let b = iterative::IterativeRun::new(&mut naive, &s)
                .tie_breaker(tb(tb_seed))
                .execute()
                .unwrap();
            prop_assert_eq!(a, b, "Tabu iterative");
        }
    }
}

/// Deterministic spot-check that the tracker probe path is live on a
/// non-trivial instance (guards against the suite silently passing because
/// the search never accepts a move).
#[test]
fn sa_accepts_moves_on_a_plain_instance() {
    let etc = EtcMatrix::from_rows(&[
        vec![4.0, 7.0, 2.0],
        vec![3.0, 1.0, 9.0],
        vec![5.0, 5.0, 5.0],
        vec![2.0, 8.0, 6.0],
    ])
    .unwrap();
    let s = Scenario::with_zero_ready(etc);
    let owned = s.full_instance();
    let inst = owned.as_instance(&s);
    let mut events = 0usize;
    let _ = Sa::with_config(3, quick_sa()).map_observed(
        &inst,
        &mut TieBreaker::Deterministic,
        |_, _, _| events += 1,
    );
    assert!(events > 1, "SA never accepted a move");
    // And the tracker agrees with a naive rebuild on the final state the
    // observer saw — cheap direct use of the public LoadTracker API.
    let mut lt = LoadTracker::new();
    lt.rebuild(&inst, &[0, 1, 0, 2]);
    assert_eq!(lt.makespan(), lt.loads().iter().copied().max().unwrap());
}
