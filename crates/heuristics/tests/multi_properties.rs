//! Determinism contract of the multi-restart SA/Tabu pools and the shared
//! incumbent: for a fixed `(seed, threads)` pair the pools must be pure
//! functions of their inputs (repeated runs bit-identical, regardless of
//! which worker publishes first), `threads == 1 && restarts == 1` must
//! replay the single-threaded engines exactly, and the lock-free
//! [`Incumbent`] slot must be monotone non-increasing at every publish.

use hcs_core::{EtcMatrix, Heuristic, Incumbent, Scenario, TieBreaker, Time};
use hcs_heuristics::{MultiConfig, MultiSa, MultiTabu, Sa, SaConfig, Tabu, TabuConfig};
use proptest::prelude::*;

/// Random small-integer matrices (tie-rich, exact f64 arithmetic).
fn integer_etc() -> impl Strategy<Value = EtcMatrix> {
    (2usize..=5, 2usize..=10).prop_flat_map(|(m, t)| {
        proptest::collection::vec(1u32..=6, t * m).prop_map(move |values| {
            let flat: Vec<f64> = values.into_iter().map(f64::from).collect();
            EtcMatrix::new(t, m, &flat).expect("strategy produces valid values")
        })
    })
}

/// Shrunk per-restart budgets so a proptest case stays fast while both
/// accept paths (greedy/thermal, short/long hop) still fire.
fn quick_sa() -> SaConfig {
    SaConfig {
        max_steps: 600,
        sweep: 16,
        ..SaConfig::default()
    }
}

fn quick_tabu() -> TabuConfig {
    TabuConfig {
        max_hops: 60,
        ..TabuConfig::default()
    }
}

fn tb(seed: Option<u64>) -> TieBreaker {
    match seed {
        None => TieBreaker::Deterministic,
        Some(x) => TieBreaker::random(x),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fresh pools with identical `(seed, threads, restarts)` reproduce
    /// the same mapping run after run — worker scheduling must never leak
    /// into the result.
    #[test]
    fn multi_restart_pools_are_deterministic_for_fixed_seed_and_threads(
        etc in integer_etc(),
        seed in 0u64..1_000_000,
        threads in 1usize..=4,
        adopt in prop_oneof![Just(false), Just(true)],
    ) {
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let config = MultiConfig {
            threads,
            restarts: MultiConfig::restarts_for(threads),
            adopt,
        };
        for tb_seed in [None, Some(seed)] {
            let sa_first = MultiSa::with_config(seed, config, quick_sa())
                .map(&inst, &mut tb(tb_seed));
            let tabu_first = MultiTabu::with_config(seed, config, quick_tabu())
                .map(&inst, &mut tb(tb_seed));
            for _ in 0..2 {
                let sa_again = MultiSa::with_config(seed, config, quick_sa())
                    .map(&inst, &mut tb(tb_seed));
                prop_assert_eq!(
                    sa_again.order(),
                    sa_first.order(),
                    "repeated SA-Multi run diverged (threads={})",
                    threads
                );
                let tabu_again = MultiTabu::with_config(seed, config, quick_tabu())
                    .map(&inst, &mut tb(tb_seed));
                prop_assert_eq!(
                    tabu_again.order(),
                    tabu_first.order(),
                    "repeated Tabu-Multi run diverged (threads={})",
                    threads
                );
            }
        }
    }

    /// `threads == 1 && restarts == 1` is the single-threaded engine:
    /// restart 0 runs RNG stream 0 — the base seed — so the pool must
    /// replay `Sa`/`Tabu` bit for bit.
    #[test]
    fn single_lane_single_restart_is_bit_identical_to_the_plain_engines(
        etc in integer_etc(),
        seed in 0u64..1_000_000,
        adopt in prop_oneof![Just(false), Just(true)],
    ) {
        let s = Scenario::with_zero_ready(etc);
        let owned = s.full_instance();
        let inst = owned.as_instance(&s);
        let config = MultiConfig { threads: 1, restarts: 1, adopt };
        for tb_seed in [None, Some(seed)] {
            let pooled = MultiSa::with_config(seed, config, quick_sa())
                .map(&inst, &mut tb(tb_seed));
            let plain = Sa::with_config(seed, quick_sa()).map(&inst, &mut tb(tb_seed));
            prop_assert_eq!(pooled.order(), plain.order(), "SA-Multi x1 diverged");

            let pooled = MultiTabu::with_config(seed, config, quick_tabu())
                .map(&inst, &mut tb(tb_seed));
            let plain = Tabu::with_config(seed, quick_tabu()).map(&inst, &mut tb(tb_seed));
            prop_assert_eq!(pooled.order(), plain.order(), "Tabu-Multi x1 diverged");
        }
    }

    /// The shared incumbent is monotone non-increasing at every publish:
    /// for any publish sequence, each observed `(value, seed)` is ordered
    /// no higher than its predecessor in the packed `(value, seed)` order,
    /// and `publish` reports a move exactly when the observation changed.
    #[test]
    fn incumbent_is_monotone_non_increasing_at_every_publish(
        publishes in proptest::collection::vec((0.0f64..1.0e9, 0u32..=65_535), 1..64),
    ) {
        let slot = Incumbent::new();
        let mut last: Option<(Time, u16)> = None;
        for (value, seed) in publishes {
            let seed = seed as u16;
            let moved = slot.publish(Time::new(value), seed);
            let now = slot.load();
            let observed = now.expect("slot is non-empty after a publish");
            if let Some(prev) = last {
                prop_assert!(
                    (observed.0.get(), observed.1) <= (prev.0.get(), prev.1),
                    "incumbent went up: {:?} -> {:?}",
                    prev,
                    observed
                );
                prop_assert_eq!(moved, now != Some(prev), "publish() misreported a move");
            } else {
                prop_assert!(moved, "first publish into an empty slot must land");
            }
            // The slot may quantize (it drops 16 mantissa bits) but never
            // stores a value above what was published.
            prop_assert!(observed.0.get() <= value || last.is_some());
            last = now;
        }
    }
}
