//! Opt-in decision tracing: every heuristic that maps through a
//! [`MapWorkspace`] must emit exactly one `TaskCommitted` event per task —
//! matching its mapping — when a sink is attached, and must behave
//! identically (same mapping, same tie stream) when it is not.

use std::sync::Arc;

use hcs_core::obs::{TraceEvent, TraceSink, VecSink};
use hcs_core::{EtcMatrix, Heuristic, MapWorkspace, Scenario, TieBreaker};
use hcs_heuristics::{Duplex, Kpb, MaxMin, Mct, Met, MinMin, Olb, SegmentedMinMin, Sufferage, Swa};

fn scenario() -> Scenario {
    Scenario::with_zero_ready(
        EtcMatrix::from_rows(&[
            vec![2.0, 5.0, 9.0],
            vec![4.0, 1.0, 2.0],
            vec![3.0, 4.0, 3.0],
            vec![9.0, 2.0, 6.0],
            vec![1.0, 1.0, 1.0],
            vec![6.0, 3.0, 2.0],
        ])
        .unwrap(),
    )
}

fn assert_trace_matches_mapping<H: Heuristic>(mut h: H) {
    let s = scenario();
    let owned = s.full_instance();
    let inst = owned.as_instance(&s);

    let mut ws = MapWorkspace::new();
    let mut tb = TieBreaker::Deterministic;
    let untraced = h.map_with(&inst, &mut tb, &mut ws);

    let sink = Arc::new(VecSink::new());
    ws.set_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let mut tb = TieBreaker::Deterministic;
    let traced = h.map_with(&inst, &mut tb, &mut ws);
    ws.clear_trace_sink();

    assert_eq!(
        traced,
        untraced,
        "{}: tracing perturbed the mapping",
        h.name()
    );

    let commits: Vec<(u32, u32)> = sink
        .take()
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::TaskCommitted { task, machine } => Some((task, machine)),
            _ => None,
        })
        .collect();
    assert_eq!(
        commits.len(),
        inst.tasks.len(),
        "{}: one commit event per task",
        h.name()
    );
    let mut seen = vec![false; inst.tasks.len()];
    for (task, machine) in commits {
        let t = hcs_core::id::t(task);
        assert_eq!(
            traced.machine_of(t).map(|m| m.0),
            Some(machine),
            "{}: commit event disagrees with the mapping",
            h.name()
        );
        assert!(
            !seen[task as usize],
            "{}: task {task} committed twice",
            h.name()
        );
        seen[task as usize] = true;
    }
}

#[test]
fn every_workspace_heuristic_emits_one_commit_per_task() {
    assert_trace_matches_mapping(MinMin);
    assert_trace_matches_mapping(MaxMin);
    assert_trace_matches_mapping(SegmentedMinMin::default());
    assert_trace_matches_mapping(Mct);
    assert_trace_matches_mapping(Met);
    assert_trace_matches_mapping(Olb);
    assert_trace_matches_mapping(Kpb::default());
    assert_trace_matches_mapping(Swa::default());
    assert_trace_matches_mapping(Sufferage);
}

#[test]
fn duplex_emits_both_candidate_runs() {
    // Duplex maps with Min-Min *and* Max-Min and keeps the better result,
    // so its decision trace honestly shows both runs: two commit events
    // per task, not one.
    let s = scenario();
    let owned = s.full_instance();
    let inst = owned.as_instance(&s);
    let mut ws = MapWorkspace::new();
    let sink = Arc::new(VecSink::new());
    ws.set_trace_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let mut tb = TieBreaker::Deterministic;
    let _ = Duplex.map_with(&inst, &mut tb, &mut ws);
    ws.clear_trace_sink();
    let commits = sink
        .take()
        .into_iter()
        .filter(|e| matches!(e, TraceEvent::TaskCommitted { .. }))
        .count();
    assert_eq!(commits, 2 * inst.tasks.len());
}
