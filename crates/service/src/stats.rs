//! Built-in observability: request counters and latency histograms, backed
//! by the shared [`hcs_obs`] metrics [`Registry`].
//!
//! All counters are relaxed atomics — they are monotone event counts whose
//! exact interleaving does not matter, only their totals. The accounting
//! invariant the integration tests assert is
//!
//! ```text
//! submitted == served + cache_hits + rejected
//! ```
//!
//! every *valid* map request ends in exactly one of those three bins
//! (malformed lines are counted separately as `bad_requests` and never
//! enter the pipeline).
//!
//! # Binning during `SHUTDOWN`
//!
//! The invariant holds *through* shutdown, not just at steady state.
//! `SHUTDOWN` closes the queue, which splits in-flight work into exactly
//! two populations:
//!
//! * requests **accepted before the close** stay in the queue; workers
//!   drain and answer them, so they are binned `served` (or `cache_hits`
//!   if the lookup happened before enqueueing). A drained-then-served
//!   request is indistinguishable in the stats from one served before
//!   shutdown was requested — draining does not create a fourth bin.
//! * requests **arriving after the close** fail the push and are binned
//!   `rejected` (the client sees a 503).
//!
//! Since every submitted request either made it into the queue or did not,
//! the three bins still partition `submitted` exactly; the loopback test
//! `shutdown_drains_accepted_work` asserts this.
//!
//! Latencies are recorded in microseconds into fixed power-of-two buckets
//! (1 µs … ~67 s) — see [`Histogram`] in `hcs-obs`, where the service's
//! original histogram now lives — so recording is one `fetch_add` with no
//! locks and no allocation; percentiles interpolate linearly within the
//! bucket where the cumulative count crosses the rank (see [`Histogram`]
//! in `hcs-obs`), and are immune to the reservoir-sampling bias a sampled
//! exact-percentile sketch has under bursty load.
//!
//! The `STATS` latency objects also carry the raw `sum_us` and `buckets`
//! cells, so a fleet client can rebuild each node's histogram
//! ([`hcs_obs::Histogram::from_parts`]) and fold them into one merged
//! distribution ([`hcs_obs::Histogram::merge`]) — percentiles of the
//! merged histogram, not averages of per-node percentiles.
//!
//! Every metric is registered in a per-daemon [`Registry`], so the same
//! numbers back both the `STATS` JSON reply ([`ServiceStats::to_line`])
//! and the `METRICS` Prometheus text reply
//! ([`ServiceStats::prometheus_text`]).

use std::sync::Arc;

use hcs_obs::{Counter, Gauge, Registry};

use crate::json::{ObjectBuilder, Value};

/// Number of histogram buckets: bucket `i` holds samples `<= 2^i` µs.
pub use hcs_obs::BUCKETS;

/// The daemon's position in a sharded fleet, stamped into `STATS` and
/// `METRICS` output so fleet clients and scrapers can tell replies apart.
///
/// Standalone daemons have no identity and their exposition is unchanged —
/// the fields only appear once `serve --shard-id`/`--fleet-size` (or the
/// in-process equivalent) assigns one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardIdentity {
    /// Zero-based index of this daemon within the fleet.
    pub shard_id: u64,
    /// Total daemons in the fleet.
    pub fleet_size: u64,
}

/// Lock-free fixed-bucket latency histogram (microsecond resolution).
///
/// This is now the shared [`hcs_obs::Histogram`]; the old service-local
/// name is kept as an alias so existing imports keep compiling.
pub use hcs_obs::Histogram as LatencyHistogram;

/// The daemon's counters; one instance shared by every thread.
///
/// All handles are registered in an owned [`Registry`] (one per daemon, so
/// concurrent daemons in tests never share counters). The handles are
/// cheap atomic cells — the registry lock is only taken at construction
/// and exposition time, never on the request path.
#[derive(Debug)]
pub struct ServiceStats {
    registry: Registry,
    /// Fleet position, if this daemon is one shard of a fleet.
    shard: Option<ShardIdentity>,
    /// Valid map requests received (before queueing / cache lookup).
    pub submitted: Counter,
    /// Requests computed by a worker.
    pub served: Counter,
    /// Requests answered from the digest cache.
    pub cache_hits: Counter,
    /// Requests shed because the queue was full or closing.
    pub rejected: Counter,
    /// Lines that failed protocol validation (never submitted).
    pub bad_requests: Counter,
    /// `map_batch` lines received.
    pub batched: Counter,
    /// Items carried by `map_batch` lines (each also counts toward
    /// `submitted` unless it failed item-level validation).
    pub batch_items: Counter,
    /// Requests dropped by the injected-fault hook (testing aid). Faulted
    /// requests are binned `served` — a worker consumed them — so the
    /// accounting invariant is unaffected.
    pub faults: Counter,
    /// Jobs waiting in the queue (sampled at exposition time).
    queue_depth: Gauge,
    /// Configured worker-thread count.
    workers: Gauge,
    /// Client connections currently owned by the event loop.
    pub open_connections: Gauge,
    /// Event-loop wakeups (poll returns), including timeout ticks.
    pub event_wakeups: Counter,
    /// Largest per-connection read-buffer fill observed, in bytes.
    pub read_buffer_hwm: Gauge,
    /// End-to-end latency of answered map requests (queue wait + compute
    /// for misses; lookup only for hits).
    pub latency: Arc<LatencyHistogram>,
    /// Time jobs spent queued before a worker picked them up.
    pub queue_wait: Arc<LatencyHistogram>,
    /// Time workers spent inside the mapping kernel.
    pub map_time: Arc<LatencyHistogram>,
    /// Time workers spent serializing the reply line.
    pub serialize: Arc<LatencyHistogram>,
}

impl Default for ServiceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceStats {
    /// A zeroed stats block with every metric registered and no fleet
    /// identity (the standalone-daemon default).
    pub fn new() -> Self {
        Self::with_shard(None)
    }

    /// A zeroed stats block, optionally stamped with a fleet identity.
    ///
    /// When `shard` is set, an `hcs_shard_info` gauge pinned at 1 carries
    /// the identity as `shard_id`/`fleet_size` labels (the Prometheus
    /// "info metric" idiom), and [`ServiceStats::to_line`] adds matching
    /// JSON fields. When `None`, the exposition is byte-identical to what
    /// a pre-fleet daemon produced.
    pub fn with_shard(shard: Option<ShardIdentity>) -> Self {
        let registry = Registry::new();
        if let Some(id) = shard {
            let info = registry.gauge_with(
                "hcs_shard_info",
                "Fleet identity of this daemon (value is always 1).",
                &[
                    ("shard_id", &id.shard_id.to_string()),
                    ("fleet_size", &id.fleet_size.to_string()),
                ],
            );
            info.set(1);
        }
        let submitted = registry.counter(
            "hcs_requests_submitted_total",
            "Valid map requests received.",
        );
        let served = registry.counter(
            "hcs_requests_served_total",
            "Map requests computed by a worker.",
        );
        let cache_hits = registry.counter(
            "hcs_cache_hits_total",
            "Map requests answered from the digest cache.",
        );
        let rejected = registry.counter(
            "hcs_requests_rejected_total",
            "Map requests shed because the queue was full or closing.",
        );
        let bad_requests = registry.counter(
            "hcs_bad_requests_total",
            "Lines that failed protocol validation.",
        );
        let batched = registry.counter("hcs_batch_requests_total", "map_batch lines received.");
        let batch_items =
            registry.counter("hcs_batch_items_total", "Items carried by map_batch lines.");
        let faults = registry.counter(
            "hcs_faults_injected_total",
            "Requests dropped by the injected-fault hook.",
        );
        let queue_depth = registry.gauge("hcs_queue_depth", "Jobs waiting in the queue.");
        let workers = registry.gauge("hcs_workers", "Configured worker-thread count.");
        let open_connections = registry.gauge(
            "hcs_open_connections",
            "Client connections currently owned by the event loop.",
        );
        let event_wakeups = registry.counter(
            "hcs_event_wakeups_total",
            "Event-loop wakeups (poll returns), including timeout ticks.",
        );
        let read_buffer_hwm = registry.gauge(
            "hcs_read_buffer_hwm_bytes",
            "Largest per-connection read-buffer fill observed, in bytes.",
        );
        let latency = registry.histogram(
            "hcs_request_latency_us",
            "End-to-end latency of answered map requests in microseconds.",
        );
        let queue_wait = registry.histogram(
            "hcs_queue_wait_us",
            "Time jobs waited in the queue before a worker picked them up.",
        );
        let map_time = registry.histogram(
            "hcs_map_time_us",
            "Time workers spent inside the mapping kernel.",
        );
        let serialize = registry.histogram(
            "hcs_serialize_us",
            "Time workers spent serializing reply lines.",
        );
        Self {
            registry,
            shard,
            submitted,
            served,
            cache_hits,
            rejected,
            bad_requests,
            batched,
            batch_items,
            faults,
            queue_depth,
            workers,
            open_connections,
            event_wakeups,
            read_buffer_hwm,
            latency,
            queue_wait,
            map_time,
            serialize,
        }
    }

    /// Renders the `STATS` reply line. `queue_depth` and `workers` come
    /// from the server (the stats block does not know the queue).
    pub fn to_line(&self, queue_depth: usize, workers: usize) -> String {
        self.queue_depth.set(queue_depth as u64);
        self.workers.set(workers as u64);
        let count = |c: &Counter| Value::Number(c.get() as f64);
        let latency = hist_value(&self.latency);
        let queue_wait = hist_value(&self.queue_wait);
        let mut stats = ObjectBuilder::new()
            .field("submitted", count(&self.submitted))
            .field("served", count(&self.served))
            .field("cache_hits", count(&self.cache_hits))
            .field("rejected", count(&self.rejected))
            .field("bad_requests", count(&self.bad_requests))
            .field("batched", count(&self.batched))
            .field("batch_items", count(&self.batch_items))
            .field("faults", count(&self.faults))
            .field("queue_depth", Value::Number(queue_depth as f64))
            .field("workers", Value::Number(workers as f64))
            .field(
                "open_connections",
                Value::Number(self.open_connections.get() as f64),
            )
            .field(
                "event_wakeups",
                Value::Number(self.event_wakeups.get() as f64),
            )
            .field(
                "read_buffer_hwm_bytes",
                Value::Number(self.read_buffer_hwm.get() as f64),
            );
        if let Some(id) = self.shard {
            stats = stats
                .field("shard_id", Value::Number(id.shard_id as f64))
                .field("fleet_size", Value::Number(id.fleet_size as f64));
        }
        ObjectBuilder::new()
            .field("ok", Value::Bool(true))
            .field("v", Value::Number(crate::protocol::PROTOCOL_VERSION as f64))
            .field(
                "stats",
                stats
                    .field("latency", latency)
                    .field("queue_wait", queue_wait)
                    .build(),
            )
            .build()
            .to_string()
    }

    /// Renders every registered metric in the Prometheus text exposition
    /// format (the `METRICS` reply body). `queue_depth` and `workers` are
    /// sampled into their gauges first so the text is self-consistent.
    pub fn prometheus_text(&self, queue_depth: usize, workers: usize) -> String {
        self.queue_depth.set(queue_depth as u64);
        self.workers.set(workers as u64);
        self.registry.prometheus_text()
    }
}

/// Renders one histogram as a `STATS` JSON object: interpolated
/// percentiles for dashboards, plus the raw `sum_us`/`buckets` cells a
/// fleet client needs to rebuild and merge the distribution.
fn hist_value(h: &LatencyHistogram) -> Value {
    ObjectBuilder::new()
        .field("count", Value::Number(h.count() as f64))
        .field("p50_us", Value::Number(h.percentile(50.0) as f64))
        .field("p95_us", Value::Number(h.percentile(95.0) as f64))
        .field("p99_us", Value::Number(h.percentile(99.0) as f64))
        .field("max_us", Value::Number(h.max() as f64))
        .field("sum_us", Value::Number(h.sum() as f64))
        .field(
            "buckets",
            Value::Array(
                h.bucket_counts()
                    .iter()
                    .map(|&c| Value::Number(c as f64))
                    .collect(),
            ),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;

    #[test]
    fn percentiles_track_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket <= 4
        }
        h.record(Duration::from_millis(100)); // ~1e5 µs
        assert_eq!(h.count(), 100);
        // Rank 50 of 99 samples in the (2, 4] bucket interpolates to 3.
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(99.0), 4);
        assert!(h.percentile(100.0) >= 100_000 / 2);
        assert!(h.max() >= 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn sub_microsecond_lands_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.percentile(50.0), 2); // 0 µs -> clamped to bucket 1
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stats_line_renders_all_counters() {
        let s = ServiceStats::new();
        s.submitted.inc();
        s.submitted.inc();
        s.served.inc();
        s.cache_hits.inc();
        s.latency.record(Duration::from_micros(100));
        let line = s.to_line(3, 4);
        let v = crate::json::parse(&line).unwrap();
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("submitted").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("served").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("rejected").unwrap().as_u64(), Some(0));
        assert_eq!(stats.get("batched").unwrap().as_u64(), Some(0));
        assert_eq!(stats.get("batch_items").unwrap().as_u64(), Some(0));
        assert_eq!(stats.get("faults").unwrap().as_u64(), Some(0));
        assert_eq!(stats.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("workers").unwrap().as_u64(), Some(4));
        let lat = stats.get("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(lat.get("p50_us").unwrap().as_u64(), Some(128));
    }

    #[test]
    fn latency_objects_carry_mergeable_cells_that_round_trip() {
        let s = ServiceStats::new();
        s.latency.record(Duration::from_micros(100));
        s.latency.record(Duration::from_micros(3000));
        s.queue_wait.record(Duration::from_micros(7));
        let v = crate::json::parse(&s.to_line(0, 1)).unwrap();
        for (key, source) in [("latency", &s.latency), ("queue_wait", &s.queue_wait)] {
            let obj = v.get("stats").unwrap().get(key).unwrap();
            let counts: Vec<u64> = obj
                .get("buckets")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|c| c.as_u64().unwrap())
                .collect();
            assert_eq!(counts.len(), BUCKETS);
            let rebuilt = LatencyHistogram::from_parts(
                &counts,
                obj.get("sum_us").unwrap().as_u64().unwrap(),
                obj.get("max_us").unwrap().as_u64().unwrap(),
            );
            assert_eq!(rebuilt.count(), source.count(), "{key}");
            assert_eq!(rebuilt.sum(), source.sum(), "{key}");
            assert_eq!(rebuilt.percentile(95.0), source.percentile(95.0), "{key}");
        }
    }

    #[test]
    fn prometheus_text_covers_every_stats_counter_and_validates() {
        let s = ServiceStats::new();
        s.submitted.inc();
        s.served.inc();
        s.latency.record(Duration::from_micros(42));
        let text = s.prometheus_text(5, 2);
        hcs_obs::validate_prometheus(&text).expect("exposition must be valid");
        for name in [
            "hcs_requests_submitted_total",
            "hcs_requests_served_total",
            "hcs_cache_hits_total",
            "hcs_requests_rejected_total",
            "hcs_bad_requests_total",
            "hcs_batch_requests_total",
            "hcs_batch_items_total",
            "hcs_faults_injected_total",
            "hcs_queue_depth",
            "hcs_workers",
            "hcs_request_latency_us",
            "hcs_queue_wait_us",
            "hcs_map_time_us",
            "hcs_serialize_us",
        ] {
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "missing # TYPE for {name}"
            );
        }
        assert!(text.contains("hcs_queue_depth 5\n"));
        assert!(text.contains("hcs_workers 2\n"));
        assert!(text.contains("hcs_request_latency_us_count 1\n"));
    }

    #[test]
    fn shard_identity_shows_up_in_both_expositions() {
        let s = ServiceStats::with_shard(Some(ShardIdentity {
            shard_id: 2,
            fleet_size: 4,
        }));
        let line = s.to_line(0, 1);
        let v = crate::json::parse(&line).unwrap();
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("shard_id").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("fleet_size").unwrap().as_u64(), Some(4));
        let text = s.prometheus_text(0, 1);
        hcs_obs::validate_prometheus(&text).expect("exposition must be valid");
        assert!(text.contains("hcs_shard_info{shard_id=\"2\",fleet_size=\"4\"} 1\n"));
    }

    #[test]
    fn standalone_daemon_exposes_no_shard_fields() {
        let s = ServiceStats::new();
        let line = s.to_line(0, 1);
        assert!(!line.contains("shard_id"));
        assert!(!line.contains("fleet_size"));
        assert!(!s.prometheus_text(0, 1).contains("hcs_shard_info"));
    }

    #[test]
    fn stats_and_metrics_read_the_same_cells() {
        let s = ServiceStats::new();
        s.rejected.inc();
        s.rejected.inc();
        assert!(s.to_line(0, 1).contains("\"rejected\":2"));
        assert!(s
            .prometheus_text(0, 1)
            .contains("hcs_requests_rejected_total 2\n"));
    }
}
