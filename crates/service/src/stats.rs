//! Built-in observability: request counters and latency histograms.
//!
//! All counters are relaxed atomics — they are monotone event counts whose
//! exact interleaving does not matter, only their totals. The accounting
//! invariant the integration tests assert is
//!
//! ```text
//! submitted == served + cache_hits + rejected
//! ```
//!
//! every *valid* map request ends in exactly one of those three bins
//! (malformed lines are counted separately as `bad_requests` and never
//! enter the pipeline).
//!
//! Latencies are recorded in microseconds into fixed power-of-two buckets
//! (1 µs … ~67 s), so recording is one `fetch_add` with no locks and no
//! allocation; percentiles are read out as the upper bound of the bucket
//! where the cumulative count crosses the rank. That quantizes p50/p95/p99
//! to 2× resolution — plenty for a load shedder's dashboard, and immune to
//! the reservoir-sampling bias a sampled exact-percentile sketch has under
//! bursty load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::{ObjectBuilder, Value};

/// Number of histogram buckets: bucket `i` holds samples `<= 2^i` µs.
pub const BUCKETS: usize = 27;

/// Lock-free fixed-bucket latency histogram (microsecond resolution).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket containing the `p`-th percentile
    /// (`p` in `(0, 100]`), or 0 with no samples.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i;
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Largest recorded sample in µs.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("count", Value::Number(self.count() as f64))
            .field("p50_us", Value::Number(self.percentile_us(50.0) as f64))
            .field("p95_us", Value::Number(self.percentile_us(95.0) as f64))
            .field("p99_us", Value::Number(self.percentile_us(99.0) as f64))
            .field("max_us", Value::Number(self.max_us() as f64))
            .build()
    }
}

/// The daemon's counters; one instance shared by every thread.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Valid map requests received (before queueing / cache lookup).
    pub submitted: AtomicU64,
    /// Requests computed by a worker.
    pub served: AtomicU64,
    /// Requests answered from the digest cache.
    pub cache_hits: AtomicU64,
    /// Requests shed because the queue was full or closing.
    pub rejected: AtomicU64,
    /// Lines that failed protocol validation (never submitted).
    pub bad_requests: AtomicU64,
    /// End-to-end latency of answered map requests (queue wait + compute
    /// for misses; lookup only for hits).
    pub latency: LatencyHistogram,
}

/// One relaxed increment.
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

impl ServiceStats {
    /// A zeroed stats block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the `STATS` reply line. `queue_depth` and `workers` come
    /// from the server (the stats block does not know the queue).
    pub fn to_line(&self, queue_depth: usize, workers: usize) -> String {
        let load = |c: &AtomicU64| Value::Number(c.load(Ordering::Relaxed) as f64);
        ObjectBuilder::new()
            .field("ok", Value::Bool(true))
            .field(
                "stats",
                ObjectBuilder::new()
                    .field("submitted", load(&self.submitted))
                    .field("served", load(&self.served))
                    .field("cache_hits", load(&self.cache_hits))
                    .field("rejected", load(&self.rejected))
                    .field("bad_requests", load(&self.bad_requests))
                    .field("queue_depth", Value::Number(queue_depth as f64))
                    .field("workers", Value::Number(workers as f64))
                    .field("latency", self.latency.to_json())
                    .build(),
            )
            .build()
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket <= 4
        }
        h.record(Duration::from_millis(100)); // ~1e5 µs
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_us(50.0), 4);
        assert_eq!(h.percentile_us(99.0), 4);
        assert!(h.percentile_us(100.0) >= 100_000 / 2);
        assert!(h.max_us() >= 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_us(50.0), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn sub_microsecond_lands_in_first_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(10));
        assert_eq!(h.percentile_us(50.0), 2); // 0 µs -> clamped to bucket 1
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stats_line_renders_all_counters() {
        let s = ServiceStats::new();
        bump(&s.submitted);
        bump(&s.submitted);
        bump(&s.served);
        bump(&s.cache_hits);
        s.latency.record(Duration::from_micros(100));
        let line = s.to_line(3, 4);
        let v = crate::json::parse(&line).unwrap();
        let stats = v.get("stats").unwrap();
        assert_eq!(stats.get("submitted").unwrap().as_u64(), Some(2));
        assert_eq!(stats.get("served").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("rejected").unwrap().as_u64(), Some(0));
        assert_eq!(stats.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("workers").unwrap().as_u64(), Some(4));
        let lat = stats.get("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(lat.get("p50_us").unwrap().as_u64(), Some(128));
    }
}
