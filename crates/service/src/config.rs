//! Daemon configuration: [`ServeConfig`] plus its validating
//! [`ServeConfigBuilder`].
//!
//! The struct's fields stay public (and `Default` keeps working) so
//! existing literal constructors compile, but the builder is the supported
//! way to assemble a config: it validates the cross-field rules that used
//! to live ad hoc in the CLI flag parser — fault-rate range, shard
//! pairing, worker count — and reports violations as typed
//! [`ConfigError`]s instead of stringly CLI errors. `nonmakespan serve`,
//! `nonmakespan fleet`, the integration suites, and `loadgen` all build
//! their daemons through it.

use std::fmt;
use std::time::Duration;

use crate::stats::ShardIdentity;

/// Default cap on one request line, in bytes. Large enough for a
/// max-sized `map_batch` line of realistic instances, small enough to
/// bound what one connection can force the daemon to buffer.
pub const DEFAULT_MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Default slow-loris guard: connections idle this long with no pending
/// reply are closed.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns a `MapWorkspace`); ≥ 1.
    pub workers: usize,
    /// Bounded queue depth — pending requests beyond this are rejected.
    pub queue_depth: usize,
    /// Total digest-cache entries.
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Slots in the trace ring served by the `TRACE` verb (0 disables
    /// tracing entirely — event emission becomes a no-op branch).
    pub trace_capacity: usize,
    /// Probability in `[0, 1]` that a worker drops a request with an
    /// [`ErrorCode::Fault`](crate::ErrorCode::Fault) reply instead of
    /// executing it. Deterministic given `fault_seed` and the request
    /// arrival order; `0.0` (the default) disables the hook entirely.
    /// A testing aid for exercising client retry paths — never enable it
    /// on a real deployment.
    pub fault_rate: f64,
    /// Seed for the fault-injection sequence.
    pub fault_seed: u64,
    /// Fleet identity (`serve --shard-id`/`--fleet-size`). When set, the
    /// daemon stamps it into `STATS` and `METRICS` output; standalone
    /// daemons (`None`, the default) expose exactly the pre-fleet shape.
    pub shard: Option<ShardIdentity>,
    /// Maximum bytes in one request line. Longer lines get a typed 400
    /// reply and are discarded up to the next newline.
    pub max_line_bytes: usize,
    /// Connections idle this long with nothing in flight are closed
    /// (slow-loris guard). [`Duration::ZERO`] disables the sweep.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".into(),
            workers: 4,
            queue_depth: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            trace_capacity: 1024,
            fault_rate: 0.0,
            fault_seed: 0,
            shard: None,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
        }
    }
}

impl ServeConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
            shard_id: None,
            fleet_size: None,
        }
    }
}

/// A validation failure from [`ServeConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// The bind address is empty.
    EmptyAddr,
    /// `workers` must be at least 1.
    ZeroWorkers,
    /// `fault_rate` is outside `[0, 1]` (or not finite).
    FaultRateOutOfRange(f64),
    /// Only one of `shard_id` / `fleet_size` was given.
    ShardIncomplete,
    /// `fleet_size` must be at least 1.
    ZeroFleet,
    /// `shard_id` must be strictly less than `fleet_size`.
    ShardOutOfRange {
        /// The offending shard index.
        shard_id: u64,
        /// The configured fleet size.
        fleet_size: u64,
    },
    /// `max_line_bytes` is too small to carry even control verbs.
    MaxLineTooSmall(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyAddr => write!(f, "bind address must not be empty"),
            ConfigError::ZeroWorkers => write!(f, "--workers must be at least 1"),
            ConfigError::FaultRateOutOfRange(r) => {
                write!(f, "--fault-rate must be in [0, 1], got {r}")
            }
            ConfigError::ShardIncomplete => {
                write!(f, "--shard-id and --fleet-size must be given together")
            }
            ConfigError::ZeroFleet => write!(f, "--fleet-size must be at least 1"),
            ConfigError::ShardOutOfRange {
                shard_id,
                fleet_size,
            } => write!(
                f,
                "--shard-id must be less than --fleet-size ({shard_id} >= {fleet_size})"
            ),
            ConfigError::MaxLineTooSmall(n) => write!(
                f,
                "--max-line-bytes must be at least {MIN_MAX_LINE_BYTES}, got {n}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Floor for [`ServeConfig::max_line_bytes`]: every control verb and a
/// small map request must fit.
pub const MIN_MAX_LINE_BYTES: usize = 1024;

/// Validating builder for [`ServeConfig`]; see the module docs.
#[derive(Clone, Debug)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
    shard_id: Option<u64>,
    fleet_size: Option<u64>,
}

impl ServeConfigBuilder {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.addr = addr.into();
        self
    }

    /// Worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Bounded queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.cfg.queue_depth = depth;
        self
    }

    /// Total digest-cache entries.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cfg.cache_capacity = capacity;
        self
    }

    /// Cache shard count.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cfg.cache_shards = shards;
        self
    }

    /// Trace ring capacity (0 disables tracing).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.cfg.trace_capacity = capacity;
        self
    }

    /// Injected-fault probability (testing aid).
    pub fn fault_rate(mut self, rate: f64) -> Self {
        self.cfg.fault_rate = rate;
        self
    }

    /// Seed for the fault-injection sequence.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.cfg.fault_seed = seed;
        self
    }

    /// This daemon's zero-based shard index (requires
    /// [`ServeConfigBuilder::fleet_size`]).
    pub fn shard_id(mut self, id: u64) -> Self {
        self.shard_id = Some(id);
        self
    }

    /// Total fleet size (requires [`ServeConfigBuilder::shard_id`]).
    pub fn fleet_size(mut self, size: u64) -> Self {
        self.fleet_size = Some(size);
        self
    }

    /// Fleet identity in one call (equivalent to `shard_id` +
    /// `fleet_size`).
    pub fn shard(mut self, identity: ShardIdentity) -> Self {
        self.shard_id = Some(identity.shard_id);
        self.fleet_size = Some(identity.fleet_size);
        self
    }

    /// Per-line byte cap for request framing.
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.cfg.max_line_bytes = bytes;
        self
    }

    /// Idle-connection timeout ([`Duration::ZERO`] disables it).
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.idle_timeout = timeout;
        self
    }

    /// Validates the cross-field rules and returns the config.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        let ServeConfigBuilder {
            mut cfg,
            shard_id,
            fleet_size,
        } = self;
        if cfg.addr.is_empty() {
            return Err(ConfigError::EmptyAddr);
        }
        if cfg.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if !cfg.fault_rate.is_finite() || !(0.0..=1.0).contains(&cfg.fault_rate) {
            return Err(ConfigError::FaultRateOutOfRange(cfg.fault_rate));
        }
        if cfg.max_line_bytes < MIN_MAX_LINE_BYTES {
            return Err(ConfigError::MaxLineTooSmall(cfg.max_line_bytes));
        }
        cfg.shard = match (shard_id, fleet_size) {
            (None, None) => None,
            (Some(_), None) | (None, Some(_)) => return Err(ConfigError::ShardIncomplete),
            (Some(_), Some(0)) => return Err(ConfigError::ZeroFleet),
            (Some(shard_id), Some(fleet_size)) if shard_id >= fleet_size => {
                return Err(ConfigError::ShardOutOfRange {
                    shard_id,
                    fleet_size,
                })
            }
            (Some(shard_id), Some(fleet_size)) => Some(ShardIdentity {
                shard_id,
                fleet_size,
            }),
        };
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_struct_defaults() {
        let built = ServeConfig::builder().build().unwrap();
        let defaulted = ServeConfig::default();
        assert_eq!(built.addr, defaulted.addr);
        assert_eq!(built.workers, defaulted.workers);
        assert_eq!(built.queue_depth, defaulted.queue_depth);
        assert_eq!(built.cache_capacity, defaulted.cache_capacity);
        assert_eq!(built.max_line_bytes, defaulted.max_line_bytes);
        assert_eq!(built.idle_timeout, defaulted.idle_timeout);
        assert!(built.shard.is_none());
    }

    #[test]
    fn typed_errors_cover_each_rule() {
        assert_eq!(
            ServeConfig::builder().addr("").build().unwrap_err(),
            ConfigError::EmptyAddr
        );
        assert_eq!(
            ServeConfig::builder().workers(0).build().unwrap_err(),
            ConfigError::ZeroWorkers
        );
        assert_eq!(
            ServeConfig::builder().fault_rate(1.5).build().unwrap_err(),
            ConfigError::FaultRateOutOfRange(1.5)
        );
        assert!(matches!(
            ServeConfig::builder().fault_rate(f64::NAN).build(),
            Err(ConfigError::FaultRateOutOfRange(r)) if r.is_nan()
        ));
        assert_eq!(
            ServeConfig::builder().shard_id(0).build().unwrap_err(),
            ConfigError::ShardIncomplete
        );
        assert_eq!(
            ServeConfig::builder().fleet_size(2).build().unwrap_err(),
            ConfigError::ShardIncomplete
        );
        assert_eq!(
            ServeConfig::builder()
                .shard_id(0)
                .fleet_size(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroFleet
        );
        assert_eq!(
            ServeConfig::builder()
                .shard_id(3)
                .fleet_size(3)
                .build()
                .unwrap_err(),
            ConfigError::ShardOutOfRange {
                shard_id: 3,
                fleet_size: 3
            }
        );
        assert_eq!(
            ServeConfig::builder()
                .max_line_bytes(16)
                .build()
                .unwrap_err(),
            ConfigError::MaxLineTooSmall(16)
        );
    }

    #[test]
    fn valid_shard_pair_lands_in_the_config() {
        let cfg = ServeConfig::builder()
            .addr("127.0.0.1:0")
            .shard_id(1)
            .fleet_size(4)
            .build()
            .unwrap();
        assert_eq!(
            cfg.shard,
            Some(ShardIdentity {
                shard_id: 1,
                fleet_size: 4
            })
        );
    }
}
