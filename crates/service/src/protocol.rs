//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Each request is one JSON object on one line. The `op` field selects the
//! operation (`"map"` is the default when absent):
//!
//! ```json
//! {"op":"map","v":1,"etc":[[2,4],[3,1]],"heuristic":"min-min",
//!  "ready":[0,0],"random_ties":7,"iterative":true,"guard":false,
//!  "objective":"flowtime"}
//! {"op":"map_batch","v":1,"items":[{"etc":[[2,4]],"heuristic":"mct"}]}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"trace","rid":"5851f42d4c957f2d"}
//! {"op":"shutdown"}
//! ```
//!
//! The `"objective"` field selects what the mapping is scored against —
//! `"makespan"` (the default when absent or `null`, so v1 requests keep
//! their meaning *and* their cache digests), `"flowtime"`, or
//! `"weighted-flowtime"`. Unknown objective strings are rejected with a
//! typed [`ErrorCode::Parse`] error — never silently treated as makespan.
//!
//! # Correlation
//!
//! `map` and `map_batch` items accept an optional `"rid"` request id — a
//! 64-bit value spelled as up to 16 hex digits (a non-negative integer is
//! also accepted for hand-written lines). Absent, `null`, or zero means
//! "server-assigned": the daemon stamps its own id into the request's
//! trace events but does *not* echo it, keeping v1 reply lines
//! byte-stable. A client-supplied rid is excluded from the cache digest
//! (like `sleep_ms`, it does not affect the result) and *is* echoed back
//! in the reply's `"rid"` field. `trace` with a `"rid"` filters the reply
//! to that request's events and returns its recorded phase spans.
//!
//! # Versioning
//!
//! Every line — request and response — carries a `"v"` protocol version
//! field. A missing (or `null`) version means v1, so pre-versioning
//! clients keep working; any *other* value is rejected with a typed
//! [`ErrorCode::Version`] error rather than a parse failure, giving future
//! protocol revisions a well-defined negotiation point.
//!
//! # Errors
//!
//! Replies are one JSON object per line with a leading `"ok"` field.
//! Errors carry both an HTTP-flavoured numeric `code` (`400` malformed
//! request, `404` unknown heuristic, `500` server fault, `503` overloaded
//! or shutting down) and a closed machine-readable `error_code` string —
//! the serialized [`ErrorCode`] — so clients can triage retryable from
//! terminal failures without string-matching the human-readable message.
//!
//! # Batching
//!
//! `map_batch` carries up to [`MAX_BATCH_ITEMS`] map requests in one line;
//! the server fans the items across its worker pool and replies with a
//! single line whose `items` array preserves request order. Failures are
//! reported *per item* (each entry is a complete single-map reply object),
//! so one poisoned item never fails the batch around it.
//!
//! Everything in this module is pure (no sockets, no threads): `parse
//! request → execute → render response` is a plain function pipeline, which
//! is what the round-trip unit tests exercise and what the server loop
//! composes with the queue and cache.

use std::fmt;
use std::sync::Arc;

use hcs_core::{
    EtcMatrix, Heuristic, InstanceDigest, IterativeConfig, IterativeRun, Objective, ReadyTimes,
    Scenario, TieBreaker,
};
use hcs_obs::RequestId;

use crate::json::{self, ObjectBuilder, Value};

/// Upper bound on `sleep_ms`, the load-testing knob that pads a request's
/// service time (used by the backpressure tests and `loadgen`).
pub const MAX_SLEEP_MS: u64 = 5_000;

/// The protocol version this build speaks (see the module docs).
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on the number of items in one `map_batch` line. Keeps a
/// single connection from monopolizing the queue. Since batch replies
/// stream item by item (the reply is never materialized as one giant
/// line), the limit is set by queue fairness, not reply memory.
pub const MAX_BATCH_ITEMS: usize = 10_240;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a heuristic (optionally the iterative driver) on an instance.
    Map(MapRequest),
    /// Run many map requests in one line, fanned across the worker pool.
    MapBatch(BatchRequest),
    /// Return the observability snapshot.
    Stats,
    /// Return the metrics registry in Prometheus text exposition format.
    Metrics,
    /// Return the daemon's recent trace events as a JSON array. With a
    /// rid, only that request's events (plus its recorded phase spans).
    Trace {
        /// `Some` filters the reply to one request id.
        rid: Option<u64>,
    },
    /// Drain the queue, join the workers, stop the daemon.
    Shutdown,
}

impl Request {
    /// Parses and validates one request line straight from the
    /// connection's read buffer — the typed entry point the event loop
    /// uses (no intermediate `String` for the line). Bytes must be UTF-8;
    /// anything else is a typed 400, exactly like malformed JSON.
    pub fn parse(bytes: &[u8]) -> Result<Request, ProtocolError> {
        let line = std::str::from_utf8(bytes)
            .map_err(|_| ProtocolError::bad_request("request line is not valid utf-8"))?;
        parse_request(line)
    }
}

/// A typed reply, paired with [`Request`]: every handler produces one of
/// these, and [`Reply::write_to`] is the single place reply lines are
/// rendered to bytes. Handlers therefore stay pure functions — request in,
/// `Reply` out — unit-testable without sockets; the event loop and the
/// original protocol tests both consume this API.
///
/// Wire stability: the rendered bytes are exactly what the
/// thread-per-connection server produced — `Map` replicates the
/// `to_line`/`stamp_rid` rendering (server-assigned rids are not echoed),
/// and `Batch` renders the same `{"ok":true,"v":1,"items":[...]}` shape
/// the gather loop used to build, just written incrementally.
#[derive(Clone, Debug)]
pub enum Reply {
    /// A computed map result (worker completion or cache hit).
    Map {
        /// The (possibly cached) result payload.
        result: Arc<MapResult>,
        /// Whether it came from the digest cache.
        cached: bool,
        /// The client-supplied rid to echo; `None` keeps the v1 line
        /// byte-stable (server-assigned rids are never echoed).
        rid: Option<u64>,
    },
    /// A fully gathered `map_batch` reply (item objects in wire order).
    /// The event loop streams items as they complete instead of building
    /// this variant; both paths produce identical bytes.
    Batch {
        /// Rendered per-item reply objects.
        items: Vec<Value>,
    },
    /// The `STATS` snapshot line (rendered by `ServiceStats`, which owns
    /// the registry).
    Stats {
        /// The complete reply line, newline excluded.
        line: String,
    },
    /// The `METRICS` exposition payload.
    Metrics {
        /// Prometheus text exposition to embed.
        text: String,
    },
    /// A `TRACE` reply line (events/spans already rendered).
    Trace {
        /// The complete reply line, newline excluded.
        line: String,
    },
    /// The `SHUTDOWN` acknowledgement.
    Draining,
    /// A typed rejection.
    Error(ProtocolError),
}

impl Reply {
    /// Writes the full reply line, **including** the trailing newline.
    /// Batch replies are written header → items → footer without ever
    /// concatenating one giant string.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        match self {
            Reply::Map {
                result,
                cached,
                rid,
            } => {
                let line = stamp_rid(stamp_version(result.to_value(*cached)), *rid).to_string();
                w.write_all(line.as_bytes())?;
            }
            Reply::Batch { items } => {
                write!(w, "{{\"ok\":true,\"v\":{PROTOCOL_VERSION},\"items\":[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        w.write_all(b",")?;
                    }
                    write!(w, "{item}")?;
                }
                w.write_all(b"]}")?;
            }
            Reply::Stats { line } | Reply::Trace { line } => w.write_all(line.as_bytes())?,
            Reply::Metrics { text } => {
                let line = stamp_version(
                    ObjectBuilder::new()
                        .field("ok", Value::Bool(true))
                        .field("metrics", Value::String(text.clone()))
                        .build(),
                )
                .to_string();
                w.write_all(line.as_bytes())?;
            }
            Reply::Draining => {
                let line = stamp_version(
                    ObjectBuilder::new()
                        .field("ok", Value::Bool(true))
                        .field("draining", Value::Bool(true))
                        .build(),
                )
                .to_string();
                w.write_all(line.as_bytes())?;
            }
            Reply::Error(e) => w.write_all(e.to_line().as_bytes())?,
        }
        w.write_all(b"\n")
    }

    /// Renders the reply line as a `String`, newline excluded (the shape
    /// the line-oriented tests compare against).
    pub fn to_line(&self) -> String {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("Vec<u8> writes are infallible");
        buf.pop();
        String::from_utf8(buf).expect("replies are valid utf-8")
    }
}

/// A parsed `map_batch` line. Item-level parse failures are kept in place
/// (as `Err`) so the reply can report them per item, in order, without
/// failing the neighbouring items.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRequest {
    /// The items, in wire order.
    pub items: Vec<Result<MapRequest, ProtocolError>>,
}

/// A validated mapping request: the scenario is already constructed, the
/// heuristic name canonicalized, so execution cannot fail on bad input.
#[derive(Clone, Debug, PartialEq)]
pub struct MapRequest {
    /// The problem: ETC matrix plus initial ready times.
    pub scenario: Scenario,
    /// Canonical heuristic display name (e.g. `"Min-Min"`).
    pub heuristic: String,
    /// `None` = deterministic ties; `Some(seed)` = seeded random ties.
    pub random_ties: Option<u64>,
    /// Run the full iterative technique instead of a single mapping.
    pub iterative: bool,
    /// Apply the Genitor-style seeding guard (iterative runs only).
    pub guard: bool,
    /// Artificial service-time padding in milliseconds (testing/loadgen
    /// aid; excluded from the digest because it does not affect results).
    pub sleep_ms: u64,
    /// Client-supplied request id (`None` = server-assigned). Excluded
    /// from the digest — the same instance under different rids must
    /// share a cache entry — and echoed in the reply only when supplied.
    pub rid: Option<u64>,
}

impl MapRequest {
    /// The request's content digest — the sharded cache key.
    pub fn digest(&self) -> u64 {
        InstanceDigest::of_request(
            &self.scenario,
            &self.heuristic,
            self.random_ties,
            self.iterative,
            self.guard,
        )
    }

    /// Renders the request back to its wire form (used by clients:
    /// `hcs-client`, `loadgen` and the tests).
    pub fn to_line(&self) -> String {
        let Value::Object(mut entries) = self.to_value() else {
            unreachable!("to_value builds an object")
        };
        entries.insert(0, ("op".to_string(), Value::String("map".into())));
        entries.insert(1, ("v".to_string(), Value::Number(PROTOCOL_VERSION as f64)));
        Value::Object(entries).to_string()
    }

    /// The request as a bare JSON object without the `op`/`v` line fields —
    /// the shape `map_batch` items embed.
    pub fn to_value(&self) -> Value {
        let rows: Vec<Value> = self
            .scenario
            .etc
            .tasks()
            .map(|t| {
                Value::Array(
                    self.scenario
                        .etc
                        .row(t)
                        .iter()
                        .map(|v| Value::Number(v.get()))
                        .collect(),
                )
            })
            .collect();
        let ready: Vec<Value> = self
            .scenario
            .initial_ready
            .as_slice()
            .iter()
            .map(|t| Value::Number(t.get()))
            .collect();
        let mut b = ObjectBuilder::new()
            .field("etc", Value::Array(rows))
            .field("ready", Value::Array(ready))
            .field("heuristic", Value::String(self.heuristic.clone()));
        if !self.scenario.objective.is_makespan() {
            b = b.field(
                "objective",
                Value::String(self.scenario.objective.name().to_string()),
            );
        }
        if let Some(seed) = self.random_ties {
            b = b.field("random_ties", Value::Number(seed as f64));
        }
        if self.iterative {
            b = b.field("iterative", Value::Bool(true));
        }
        if self.guard {
            b = b.field("guard", Value::Bool(true));
        }
        if self.sleep_ms > 0 {
            b = b.field("sleep_ms", Value::Number(self.sleep_ms as f64));
        }
        if let Some(rid) = self.rid {
            b = b.field("rid", Value::String(RequestId(rid).to_hex()));
        }
        b.build()
    }
}

/// Renders a `map_batch` request line carrying `items` in order.
pub fn batch_line(items: &[MapRequest]) -> String {
    ObjectBuilder::new()
        .field("op", Value::String("map_batch".into()))
        .field("v", Value::Number(PROTOCOL_VERSION as f64))
        .field(
            "items",
            Value::Array(items.iter().map(MapRequest::to_value).collect()),
        )
        .build()
        .to_string()
}

/// The closed set of machine-readable failure categories a reply can
/// carry. Serialized as a stable string in the `error_code` field; clients
/// (notably `hcs-client`) split it into retryable vs terminal outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The daemon shed the request (queue full or shutting down). The
    /// request was never executed — retrying is safe and expected.
    Shed,
    /// The request line (or an item inside it) did not validate: bad
    /// JSON, bad matrix, unknown heuristic, unknown op. Terminal.
    Parse,
    /// The request declared a protocol version this build does not speak.
    /// Terminal for this request shape.
    Version,
    /// An injected fault (testing aid, see `ServeConfig::fault_rate`). The
    /// request was dropped mid-flight; retrying is safe.
    Fault,
    /// The server failed internally (heuristic contract violation).
    /// Terminal: the same request will fail the same way.
    Internal,
}

impl ErrorCode {
    /// The stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Shed => "shed",
            ErrorCode::Parse => "parse",
            ErrorCode::Version => "version",
            ErrorCode::Fault => "fault",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire string back (`None` for anything outside the
    /// closed set).
    pub fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "shed" => ErrorCode::Shed,
            "parse" => ErrorCode::Parse,
            "version" => ErrorCode::Version,
            "fault" => ErrorCode::Fault,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Whether a client may retry the identical request and reasonably
    /// expect a different outcome.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Shed | ErrorCode::Fault)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol-level rejection, rendered as an error reply line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// HTTP-flavoured status code.
    pub code: u16,
    /// Machine-readable failure category.
    pub kind: ErrorCode,
    /// Human-readable cause.
    pub message: String,
}

impl ProtocolError {
    /// A `400 bad request` (parse/validation failure).
    pub fn bad_request(message: impl Into<String>) -> Self {
        ProtocolError {
            code: 400,
            kind: ErrorCode::Parse,
            message: message.into(),
        }
    }

    /// A `503` load-shed rejection.
    pub fn shed(message: impl Into<String>) -> Self {
        ProtocolError {
            code: 503,
            kind: ErrorCode::Shed,
            message: message.into(),
        }
    }

    /// A `400` protocol-version rejection.
    pub fn version(message: impl Into<String>) -> Self {
        ProtocolError {
            code: 400,
            kind: ErrorCode::Version,
            message: message.into(),
        }
    }

    /// A `503` injected-fault rejection (testing aid).
    pub fn fault(message: impl Into<String>) -> Self {
        ProtocolError {
            code: 503,
            kind: ErrorCode::Fault,
            message: message.into(),
        }
    }

    /// A `500` internal server failure.
    pub fn internal(message: impl Into<String>) -> Self {
        ProtocolError {
            code: 500,
            kind: ErrorCode::Internal,
            message: message.into(),
        }
    }

    /// The reply object, without the line-level version stamp (this is
    /// what batch replies embed per item).
    pub fn to_value(&self) -> Value {
        ObjectBuilder::new()
            .field("ok", Value::Bool(false))
            .field("code", Value::Number(f64::from(self.code)))
            .field("error_code", Value::String(self.kind.as_str().into()))
            .field("error", Value::String(self.message.clone()))
            .build()
    }

    /// Renders the error reply line.
    pub fn to_line(&self) -> String {
        stamp_version(self.to_value()).to_string()
    }
}

/// Inserts the `"v"` protocol-version field right after the leading `"ok"`
/// field of a reply object (all reply *lines* carry it; embedded batch
/// items do not).
pub(crate) fn stamp_version(reply: Value) -> Value {
    match reply {
        Value::Object(mut entries) => {
            let at = entries.len().min(1);
            entries.insert(
                at,
                ("v".to_string(), Value::Number(PROTOCOL_VERSION as f64)),
            );
            Value::Object(entries)
        }
        other => other,
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// Parses and validates one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let v = json::parse(line).map_err(|e| ProtocolError::bad_request(format!("bad json: {e}")))?;
    if !matches!(v, Value::Object(_)) {
        return Err(ProtocolError::bad_request("request must be a json object"));
    }
    check_version(&v)?;
    match v.get("op").and_then(Value::as_str).unwrap_or("map") {
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "trace" => Ok(Request::Trace {
            rid: parse_rid(&v)?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        "map" => parse_map(&v).map(Request::Map),
        "map_batch" => parse_batch(&v).map(Request::MapBatch),
        other => Err(ProtocolError::bad_request(format!("unknown op {other:?}"))),
    }
}

/// Missing (or `null`) `"v"` means v1; any other value than the spoken
/// version is a typed rejection, not a parse failure.
fn check_version(v: &Value) -> Result<(), ProtocolError> {
    match v.get("v") {
        None | Some(Value::Null) => Ok(()),
        Some(x) => match x.as_u64() {
            Some(PROTOCOL_VERSION) => Ok(()),
            _ => Err(ProtocolError::version(format!(
                "unsupported protocol version {x} (this daemon speaks v{PROTOCOL_VERSION})"
            ))),
        },
    }
}

/// Parses the optional `"rid"` field: up to 16 hex digits as a string, or
/// a non-negative integer for hand-written lines. Absent, `null`, and
/// zero all normalize to `None` ("server-assigned").
fn parse_rid(v: &Value) -> Result<Option<u64>, ProtocolError> {
    let rid = match v.get("rid") {
        None | Some(Value::Null) => None,
        Some(Value::String(s)) => Some(
            RequestId::from_hex(s)
                .ok_or_else(|| {
                    ProtocolError::bad_request(format!("\"rid\" is not 1-16 hex digits: {s:?}"))
                })?
                .0,
        ),
        Some(x) => Some(x.as_u64().ok_or_else(|| {
            ProtocolError::bad_request("\"rid\" must be a hex string or a non-negative integer")
        })?),
    };
    Ok(rid.filter(|&r| r != 0))
}

/// Inserts an echoed `"rid"` field right after the `"ok"`/`"v"` header of
/// a reply object (or after `"ok"` for embedded batch items, which carry
/// no version stamp). No-op for `None` — v1 replies stay byte-stable.
pub fn stamp_rid(reply: Value, rid: Option<u64>) -> Value {
    match (reply, rid) {
        (Value::Object(mut entries), Some(rid)) => {
            let header = entries
                .iter()
                .take_while(|(k, _)| k == "ok" || k == "v")
                .count();
            entries.insert(
                header,
                ("rid".to_string(), Value::String(RequestId(rid).to_hex())),
            );
            Value::Object(entries)
        }
        (other, _) => other,
    }
}

/// Parses the `items` of a `map_batch` line. The batch itself only fails
/// on structural problems (missing/oversized/non-object items array);
/// per-item validation failures are captured in place.
fn parse_batch(v: &Value) -> Result<BatchRequest, ProtocolError> {
    let items = v
        .get("items")
        .and_then(Value::as_array)
        .ok_or_else(|| ProtocolError::bad_request("map_batch requires an \"items\" array"))?;
    if items.len() > MAX_BATCH_ITEMS {
        return Err(ProtocolError::bad_request(format!(
            "batch has {} items; the limit is {MAX_BATCH_ITEMS}",
            items.len()
        )));
    }
    Ok(BatchRequest {
        items: items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if matches!(item, Value::Object(_)) {
                    parse_map(item)
                } else {
                    Err(ProtocolError::bad_request(format!(
                        "items[{i}] is not a json object"
                    )))
                }
            })
            .collect(),
    })
}

fn parse_map(v: &Value) -> Result<MapRequest, ProtocolError> {
    let etc_rows = v
        .get("etc")
        .and_then(Value::as_array)
        .ok_or_else(|| ProtocolError::bad_request("map requires an \"etc\" array of rows"))?;
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(etc_rows.len());
    for (i, row) in etc_rows.iter().enumerate() {
        let cells = row
            .as_array()
            .ok_or_else(|| ProtocolError::bad_request(format!("etc row {i} is not an array")))?;
        let mut parsed = Vec::with_capacity(cells.len());
        for (j, cell) in cells.iter().enumerate() {
            parsed.push(cell.as_f64().ok_or_else(|| {
                ProtocolError::bad_request(format!("etc[{i}][{j}] is not a number"))
            })?);
        }
        rows.push(parsed);
    }
    let etc = EtcMatrix::from_rows(&rows)
        .map_err(|e| ProtocolError::bad_request(format!("bad etc matrix: {e}")))?;

    let objective = match v.get("objective") {
        None | Some(Value::Null) => Objective::Makespan,
        Some(x) => {
            let name = x
                .as_str()
                .ok_or_else(|| ProtocolError::bad_request("\"objective\" must be a string name"))?;
            Objective::from_name(name)
                .map_err(|e| ProtocolError::bad_request(format!("bad objective: {e}")))?
        }
    };

    let scenario = match v.get("ready") {
        None | Some(Value::Null) => Scenario::with_zero_ready(etc),
        Some(r) => {
            let cells = r
                .as_array()
                .ok_or_else(|| ProtocolError::bad_request("\"ready\" must be an array"))?;
            if cells.len() != etc.n_machines() {
                return Err(ProtocolError::bad_request(format!(
                    "ready has {} entries for {} machines",
                    cells.len(),
                    etc.n_machines()
                )));
            }
            let mut values = Vec::with_capacity(cells.len());
            for (i, cell) in cells.iter().enumerate() {
                let x = cell.as_f64().ok_or_else(|| {
                    ProtocolError::bad_request(format!("ready[{i}] is not a number"))
                })?;
                if x < 0.0 {
                    return Err(ProtocolError::bad_request(format!(
                        "ready[{i}] is negative"
                    )));
                }
                values.push(x);
            }
            Scenario::with_ready(etc, ReadyTimes::from_values(&values))
        }
    };
    let scenario = scenario.with_objective(objective);

    let name = v
        .get("heuristic")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError::bad_request("map requires a \"heuristic\" name"))?;
    let random_ties = match v.get("random_ties") {
        None | Some(Value::Null) => None,
        Some(x) => Some(x.as_u64().ok_or_else(|| {
            ProtocolError::bad_request("\"random_ties\" must be a non-negative integer seed")
        })?),
    };
    // Canonicalize the heuristic name now so "min-min" and "MinMin" share a
    // digest, and so unknown names are rejected before they reach a worker.
    let canonical = resolve_heuristic(name, random_ties.unwrap_or(0))
        .map(|h| h.name().to_string())
        .ok_or_else(|| ProtocolError {
            code: 404,
            kind: ErrorCode::Parse,
            message: format!("unknown heuristic {name:?}"),
        })?;

    let flag = |key: &str| -> Result<bool, ProtocolError> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(false),
            Some(x) => x
                .as_bool()
                .ok_or_else(|| ProtocolError::bad_request(format!("\"{key}\" must be a bool"))),
        }
    };
    let sleep_ms = match v.get("sleep_ms") {
        None | Some(Value::Null) => 0,
        Some(x) => x.as_u64().filter(|&ms| ms <= MAX_SLEEP_MS).ok_or_else(|| {
            ProtocolError::bad_request(format!("\"sleep_ms\" must be an integer <= {MAX_SLEEP_MS}"))
        })?,
    };

    Ok(MapRequest {
        scenario,
        heuristic: canonical,
        random_ties,
        iterative: flag("iterative")?,
        guard: flag("guard")?,
        sleep_ms,
        rid: parse_rid(v)?,
    })
}

/// Instantiates a heuristic by wire name: the greedy registry from
/// `hcs-heuristics` plus the seeded searchers (Genitor, SA, Tabu) and beam
/// search, seeded from the tie seed like the CLI does.
pub fn resolve_heuristic(name: &str, seed: u64) -> Option<Box<dyn Heuristic>> {
    if name.eq_ignore_ascii_case("genitor") {
        return Some(Box::new(hcs_genitor::Genitor::new(seed)));
    }
    if name.eq_ignore_ascii_case("sa") {
        return Some(Box::new(hcs_heuristics::Sa::new(seed)));
    }
    if name.eq_ignore_ascii_case("tabu") {
        return Some(Box::new(hcs_heuristics::Tabu::new(seed)));
    }
    if name.eq_ignore_ascii_case("beam") {
        return Some(Box::new(hcs_heuristics::BeamSearch::default()));
    }
    hcs_heuristics::by_name(name)
}

/// The computed answer to a [`MapRequest`] — the cacheable payload. A
/// cache hit re-renders the same `MapResult`, so everything except the
/// `"cached"` flag is byte-identical between a miss and its hits.
#[derive(Clone, Debug, PartialEq)]
pub struct MapResult {
    /// Canonical heuristic name.
    pub heuristic: String,
    /// `(task, machine)` assignment steps in heuristic order (the round-0
    /// mapping for iterative runs).
    pub assignments: Vec<(u32, u32)>,
    /// `(machine, completion time)` of the original mapping.
    pub completion: Vec<(u32, f64)>,
    /// Makespan of the original mapping.
    pub makespan: f64,
    /// The objective the request was scored against.
    pub objective: Objective,
    /// The objective's value for the original mapping (equal to `makespan`
    /// under the makespan objective; rendered on the wire only when the
    /// objective is non-makespan, keeping v1 reply lines byte-stable).
    pub objective_value: f64,
    /// Iterative-driver outcome, when requested.
    pub iterative: Option<IterativeResult>,
}

/// The iterative-technique part of a [`MapResult`].
#[derive(Clone, Debug, PartialEq)]
pub struct IterativeResult {
    /// `(machine, final finishing time)` after the full procedure.
    pub final_finish: Vec<(u32, f64)>,
    /// Largest final finishing time.
    pub final_makespan: f64,
    /// Number of rounds the driver ran.
    pub rounds: u32,
    /// Whether the procedure made the overall makespan worse.
    pub makespan_increased: bool,
}

impl MapResult {
    /// Renders the reply line. `cached` reports whether this result came
    /// from the digest cache.
    pub fn to_line(&self, cached: bool) -> String {
        stamp_version(self.to_value(cached)).to_string()
    }

    /// The reply object, without the line-level version stamp (this is
    /// what batch replies embed per item).
    pub fn to_value(&self, cached: bool) -> Value {
        let pairs = |items: &[(u32, f64)]| {
            Value::Array(
                items
                    .iter()
                    .map(|&(m, t)| {
                        Value::Array(vec![Value::Number(f64::from(m)), Value::Number(t)])
                    })
                    .collect(),
            )
        };
        let mut b = ObjectBuilder::new()
            .field("ok", Value::Bool(true))
            .field("cached", Value::Bool(cached))
            .field("heuristic", Value::String(self.heuristic.clone()))
            .field(
                "assignments",
                Value::Array(
                    self.assignments
                        .iter()
                        .map(|&(t, m)| {
                            Value::Array(vec![
                                Value::Number(f64::from(t)),
                                Value::Number(f64::from(m)),
                            ])
                        })
                        .collect(),
                ),
            )
            .field("completion", pairs(&self.completion))
            .field("makespan", Value::Number(self.makespan));
        if !self.objective.is_makespan() {
            b = b
                .field(
                    "objective",
                    Value::String(self.objective.name().to_string()),
                )
                .field("objective_value", Value::Number(self.objective_value));
        }
        if let Some(it) = &self.iterative {
            b = b
                .field("final_finish", pairs(&it.final_finish))
                .field("final_makespan", Value::Number(it.final_makespan))
                .field("rounds", Value::Number(f64::from(it.rounds)))
                .field("makespan_increased", Value::Bool(it.makespan_increased));
        }
        b.build()
    }
}

/// Executes a validated request against the library — the same call path a
/// direct user of `hcs-core`/`hcs-heuristics` would take. Workers call this
/// with their own long-lived [`hcs_core::MapWorkspace`].
///
/// Validation happened at parse time, so the only possible failure is a
/// heuristic violating its mapping contract, which the in-tree heuristics
/// never do; it is still surfaced as a `500` rather than a panic.
pub fn execute(
    req: &MapRequest,
    ws: &mut hcs_core::MapWorkspace,
) -> Result<Arc<MapResult>, ProtocolError> {
    if req.sleep_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(req.sleep_ms));
    }
    let mut heuristic = resolve_heuristic(&req.heuristic, req.random_ties.unwrap_or(0))
        .expect("heuristic name was canonicalized at parse time");
    let mut tb = match req.random_ties {
        Some(seed) => TieBreaker::random(seed),
        None => TieBreaker::Deterministic,
    };
    let scenario = &req.scenario;
    let internal =
        |e: hcs_core::Error| ProtocolError::internal(format!("heuristic contract violation: {e}"));

    if req.iterative {
        let outcome = IterativeRun::new(&mut *heuristic, scenario)
            .ties(&mut tb)
            .config(IterativeConfig {
                seed_guard: req.guard,
                ..IterativeConfig::default()
            })
            .workspace(ws)
            .execute()
            .map_err(internal)?;
        let round0 = &outcome.rounds[0];
        let machines = scenario.etc.machine_vec();
        let objective_value = round0
            .mapping
            .objective_value(
                &scenario.etc,
                &scenario.initial_ready,
                &machines,
                scenario.objective,
            )
            .get();
        Ok(Arc::new(MapResult {
            heuristic: req.heuristic.clone(),
            assignments: order_pairs(round0.mapping.order()),
            completion: time_pairs(round0.completion.pairs()),
            // `round0.makespan` is the *frozen machine's* completion time,
            // which under weighted flowtime need not be the largest; the
            // reply's makespan field stays the honest maximum.
            makespan: round0.completion.makespan().get(),
            objective: scenario.objective,
            objective_value,
            iterative: Some(IterativeResult {
                final_finish: outcome
                    .final_finish
                    .iter()
                    .map(|&(m, t)| (m.0, t.get()))
                    .collect(),
                final_makespan: outcome.final_makespan().get(),
                rounds: outcome.rounds.len() as u32,
                makespan_increased: outcome.makespan_increased(),
            }),
        }))
    } else {
        let owned = scenario.full_instance();
        let inst = owned.as_instance(scenario);
        let mapping = heuristic.map_with(&inst, &mut tb, ws);
        mapping
            .validate(&owned.tasks, &owned.machines)
            .map_err(internal)?;
        let ct = mapping.completion_times(&scenario.etc, &scenario.initial_ready, &owned.machines);
        let objective_value = mapping
            .objective_value(
                &scenario.etc,
                &scenario.initial_ready,
                &owned.machines,
                scenario.objective,
            )
            .get();
        Ok(Arc::new(MapResult {
            heuristic: req.heuristic.clone(),
            assignments: order_pairs(mapping.order()),
            completion: time_pairs(ct.pairs()),
            makespan: ct.makespan().get(),
            objective: scenario.objective,
            objective_value,
            iterative: None,
        }))
    }
}

fn order_pairs(order: &[(hcs_core::TaskId, hcs_core::MachineId)]) -> Vec<(u32, u32)> {
    order.iter().map(|&(t, m)| (t.0, m.0)).collect()
}

fn time_pairs(pairs: &[(hcs_core::MachineId, hcs_core::Time)]) -> Vec<(u32, f64)> {
    pairs.iter().map(|&(m, t)| (m.0, t.get())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::MapWorkspace;

    fn map_line() -> &'static str {
        r#"{"op":"map","etc":[[2,6],[3,4],[8,3]],"heuristic":"min-min"}"#
    }

    #[test]
    fn parses_ops() {
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"op":"trace"}"#).unwrap(),
            Request::Trace { rid: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert!(matches!(
            parse_request(map_line()).unwrap(),
            Request::Map(_)
        ));
        // op defaults to map.
        assert!(matches!(
            parse_request(r#"{"etc":[[1]],"heuristic":"mct"}"#).unwrap(),
            Request::Map(_)
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        let code = |line: &str| parse_request(line).unwrap_err().code;
        assert_eq!(code("not json"), 400);
        assert_eq!(code("[1,2]"), 400);
        assert_eq!(code(r#"{"op":"frobnicate"}"#), 400);
        assert_eq!(code(r#"{"op":"map","heuristic":"mct"}"#), 400); // no etc
        assert_eq!(code(r#"{"etc":[[1],[1,2]],"heuristic":"mct"}"#), 400); // ragged
        assert_eq!(code(r#"{"etc":[[-1]],"heuristic":"mct"}"#), 400); // negative
        assert_eq!(code(r#"{"etc":[[1]]}"#), 400); // no heuristic
        assert_eq!(code(r#"{"etc":[[1]],"heuristic":"nope"}"#), 404);
        assert_eq!(
            code(r#"{"etc":[[1,2]],"ready":[0],"heuristic":"mct"}"#),
            400 // ready length mismatch
        );
        assert_eq!(
            code(r#"{"etc":[[1]],"heuristic":"mct","sleep_ms":999999}"#),
            400
        );
        assert_eq!(
            code(r#"{"etc":[[1]],"heuristic":"mct","random_ties":-3}"#),
            400
        );
    }

    #[test]
    fn heuristic_names_are_canonicalized_for_digesting() {
        let req = |name: &str| {
            let line = format!(r#"{{"etc":[[2,6],[3,4]],"heuristic":"{name}"}}"#);
            match parse_request(&line).unwrap() {
                Request::Map(m) => m,
                _ => unreachable!(),
            }
        };
        assert_eq!(req("min-min").digest(), req("MinMin").digest());
        assert_eq!(req("min-min").heuristic, "Min-Min");
        assert_ne!(req("min-min").digest(), req("mct").digest());
    }

    #[test]
    fn unknown_objectives_are_typed_rejections_not_silent_makespan() {
        // Satellite guarantee: a request naming an objective outside the
        // closed set must come back through the Parse error path — it must
        // never execute as makespan.
        for bad in ["banana", "Flowtime ", "makespan2", ""] {
            let line = format!(r#"{{"etc":[[1,2]],"heuristic":"mct","objective":"{bad}"}}"#);
            let err = parse_request(&line).unwrap_err();
            assert_eq!(err.kind, ErrorCode::Parse, "{bad:?}");
            assert_eq!(err.code, 400, "{bad:?}");
            assert!(
                err.message.contains("objective"),
                "{bad:?}: {}",
                err.message
            );
        }
        // A non-string objective is rejected the same way.
        let err = parse_request(r#"{"etc":[[1]],"heuristic":"mct","objective":7}"#).unwrap_err();
        assert_eq!(err.kind, ErrorCode::Parse);
        // Missing and null mean makespan (v1 compatibility).
        for line in [
            r#"{"etc":[[1]],"heuristic":"mct"}"#,
            r#"{"etc":[[1]],"heuristic":"mct","objective":null}"#,
        ] {
            let Request::Map(req) = parse_request(line).unwrap() else {
                unreachable!()
            };
            assert!(req.scenario.objective.is_makespan(), "{line}");
        }
    }

    #[test]
    fn objective_requests_round_trip_and_digest_distinctly() {
        let req = |objective: &str| {
            let line = format!(
                r#"{{"etc":[[2,6],[3,4]],"heuristic":"min-min","objective":"{objective}"}}"#
            );
            match parse_request(&line).unwrap() {
                Request::Map(m) => m,
                _ => unreachable!(),
            }
        };
        let makespan = req("makespan");
        let flowtime = req("flowtime");
        let weighted = req("weighted-flowtime");
        // Same problem, different objective: the cache keys must differ.
        assert_ne!(makespan.digest(), flowtime.digest());
        assert_ne!(makespan.digest(), weighted.digest());
        assert_ne!(flowtime.digest(), weighted.digest());
        // An explicit "makespan" matches the field-less v1 request exactly
        // (same digest, same rendered line).
        let Request::Map(v1) =
            parse_request(r#"{"etc":[[2,6],[3,4]],"heuristic":"min-min"}"#).unwrap()
        else {
            unreachable!()
        };
        assert_eq!(v1.digest(), makespan.digest());
        assert_eq!(v1.to_line(), makespan.to_line());
        // Non-makespan requests round-trip through their wire form.
        for r in [&flowtime, &weighted] {
            let Request::Map(back) = parse_request(&r.to_line()).unwrap() else {
                unreachable!()
            };
            assert_eq!(&back, r);
            assert_eq!(back.digest(), r.digest());
        }
    }

    #[test]
    fn flowtime_replies_carry_the_objective_value() {
        let line = r#"{"etc":[[2,6],[3,4],[8,3]],"heuristic":"min-min","objective":"flowtime"}"#;
        let Request::Map(req) = parse_request(line).unwrap() else {
            unreachable!()
        };
        let mut ws = MapWorkspace::new();
        let result = execute(&req, &mut ws).unwrap();
        let v = crate::json::parse(&result.to_line(false)).unwrap();
        assert_eq!(v.get("objective").unwrap().as_str(), Some("flowtime"));
        let ov = v.get("objective_value").unwrap().as_f64().unwrap();
        // Flowtime is the sum of the reply's own completion times.
        let sum: f64 = result.completion.iter().map(|&(_, t)| t).sum();
        assert_eq!(ov, sum);
        // Makespan replies stay byte-stable: no objective fields.
        let Request::Map(v1) = parse_request(map_line()).unwrap() else {
            unreachable!()
        };
        let r1 = execute(&v1, &mut ws).unwrap();
        let v1_reply = crate::json::parse(&r1.to_line(false)).unwrap();
        assert!(v1_reply.get("objective").is_none());
        assert!(v1_reply.get("objective_value").is_none());
    }

    #[test]
    fn request_round_trips_through_to_line() {
        let Request::Map(req) = parse_request(map_line()).unwrap() else {
            unreachable!()
        };
        let Request::Map(back) = parse_request(&req.to_line()).unwrap() else {
            unreachable!()
        };
        assert_eq!(back, req);
        assert_eq!(back.digest(), req.digest());

        // With every optional field set.
        let line = r#"{"etc":[[2,6],[3,4]],"ready":[1,0.5],"heuristic":"kpb","random_ties":9,"iterative":true,"guard":true,"sleep_ms":10}"#;
        let Request::Map(full) = parse_request(line).unwrap() else {
            unreachable!()
        };
        let Request::Map(full_back) = parse_request(&full.to_line()).unwrap() else {
            unreachable!()
        };
        assert_eq!(full_back, full);
    }

    #[test]
    fn execute_matches_direct_library_call() {
        let Request::Map(req) = parse_request(map_line()).unwrap() else {
            unreachable!()
        };
        let mut ws = MapWorkspace::new();
        let result = execute(&req, &mut ws).unwrap();

        // Direct call through hcs-heuristics, bypassing the service.
        let mut h = hcs_heuristics::by_name("min-min").unwrap();
        let mut tb = TieBreaker::Deterministic;
        let owned = req.scenario.full_instance();
        let mapping = h.map(&owned.as_instance(&req.scenario), &mut tb);
        let expect: Vec<(u32, u32)> = mapping.order().iter().map(|&(t, m)| (t.0, m.0)).collect();
        assert_eq!(result.assignments, expect);
        assert_eq!(result.makespan, 5.0);
        assert!(result.iterative.is_none());
    }

    #[test]
    fn execute_iterative_reports_final_finish() {
        let line = r#"{"etc":[[2,6],[3,4],[8,3]],"heuristic":"sufferage","iterative":true}"#;
        let Request::Map(req) = parse_request(line).unwrap() else {
            unreachable!()
        };
        let mut ws = MapWorkspace::new();
        let result = execute(&req, &mut ws).unwrap();
        let it = result.iterative.as_ref().unwrap();
        assert_eq!(it.final_finish.len(), 2);
        assert_eq!(it.rounds, 2);

        // Same run through the library directly.
        let mut h = hcs_heuristics::by_name("sufferage").unwrap();
        let outcome = IterativeRun::new(&mut *h, &req.scenario).execute().unwrap();
        assert_eq!(it.final_makespan, outcome.final_makespan().get());
        assert_eq!(it.makespan_increased, outcome.makespan_increased());
    }

    #[test]
    fn rendered_response_parses_and_is_deterministic() {
        let Request::Map(req) = parse_request(map_line()).unwrap() else {
            unreachable!()
        };
        let mut ws = MapWorkspace::new();
        let result = execute(&req, &mut ws).unwrap();
        let line_miss = result.to_line(false);
        let line_hit = result.to_line(true);
        let v = crate::json::parse(&line_miss).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("makespan").unwrap().as_f64(), Some(5.0));

        // Miss and hit differ only in the cached flag.
        let mut a = crate::json::parse(&line_miss).unwrap();
        let mut b = crate::json::parse(&line_hit).unwrap();
        a.remove("cached");
        b.remove("cached");
        assert_eq!(a, b);
        // Re-rendering is byte-stable.
        assert_eq!(result.to_line(false), line_miss);
    }

    #[test]
    fn random_tie_requests_are_reproducible() {
        let line = r#"{"etc":[[3,3],[3,3]],"heuristic":"mct","random_ties":5}"#;
        let Request::Map(req) = parse_request(line).unwrap() else {
            unreachable!()
        };
        let mut ws = MapWorkspace::new();
        let a = execute(&req, &mut ws).unwrap();
        let b = execute(&req, &mut ws).unwrap();
        assert_eq!(a.to_line(false), b.to_line(false));
    }

    #[test]
    fn error_lines_render_code_and_message() {
        let err = parse_request(r#"{"etc":[[1]],"heuristic":"nope"}"#).unwrap_err();
        assert_eq!(err.kind, ErrorCode::Parse);
        let line = err.to_line();
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("code").unwrap().as_u64(), Some(404));
        assert_eq!(v.get("error_code").unwrap().as_str(), Some("parse"));
        assert_eq!(v.get("v").unwrap().as_u64(), Some(PROTOCOL_VERSION));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("nope"));
    }

    #[test]
    fn error_codes_round_trip_and_classify() {
        for kind in [
            ErrorCode::Shed,
            ErrorCode::Parse,
            ErrorCode::Version,
            ErrorCode::Fault,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_wire(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorCode::from_wire("banana"), None);
        assert!(ErrorCode::Shed.retryable());
        assert!(ErrorCode::Fault.retryable());
        assert!(!ErrorCode::Parse.retryable());
        assert!(!ErrorCode::Version.retryable());
        assert!(!ErrorCode::Internal.retryable());
    }

    #[test]
    fn missing_version_means_v1_and_unknown_versions_are_typed_rejections() {
        // Missing and explicit v1 both parse.
        assert!(parse_request(r#"{"op":"stats"}"#).is_ok());
        assert!(parse_request(r#"{"op":"stats","v":1}"#).is_ok());
        assert!(parse_request(r#"{"op":"stats","v":null}"#).is_ok());
        // Anything else is an ErrorCode::Version, not a parse failure.
        for line in [
            r#"{"op":"stats","v":2}"#,
            r#"{"op":"stats","v":0}"#,
            r#"{"op":"stats","v":"1"}"#,
            r#"{"op":"map","v":99,"etc":[[1]],"heuristic":"mct"}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.kind, ErrorCode::Version, "{line}");
            assert_eq!(err.code, 400, "{line}");
        }
    }

    #[test]
    fn reply_lines_carry_the_version_stamp() {
        let Request::Map(req) = parse_request(map_line()).unwrap() else {
            unreachable!()
        };
        let mut ws = MapWorkspace::new();
        let result = execute(&req, &mut ws).unwrap();
        let v = crate::json::parse(&result.to_line(false)).unwrap();
        assert_eq!(v.get("v").unwrap().as_u64(), Some(PROTOCOL_VERSION));
        // Embedded batch-item values do not repeat the line-level stamp.
        assert!(result.to_value(false).get("v").is_none());
        // Request lines carry it too, and still round-trip.
        let rendered = req.to_line();
        let rv = crate::json::parse(&rendered).unwrap();
        assert_eq!(rv.get("v").unwrap().as_u64(), Some(PROTOCOL_VERSION));
    }

    #[test]
    fn batch_lines_parse_with_per_item_failures_in_place() {
        let line = r#"{"op":"map_batch","items":[
            {"etc":[[2,6],[3,4]],"heuristic":"min-min"},
            {"etc":[[1]],"heuristic":"nope"},
            {"etc":[[5,1]],"heuristic":"mct"}
        ]}"#
        .replace('\n', "");
        let Request::MapBatch(batch) = parse_request(&line).unwrap() else {
            unreachable!()
        };
        assert_eq!(batch.items.len(), 3);
        assert!(batch.items[0].is_ok());
        assert_eq!(batch.items[1].as_ref().unwrap_err().code, 404);
        assert!(batch.items[2].is_ok());
        // A non-object item is a per-item failure too, not a batch failure.
        let Request::MapBatch(batch) = parse_request(r#"{"op":"map_batch","items":[42]}"#).unwrap()
        else {
            unreachable!()
        };
        assert_eq!(batch.items[0].as_ref().unwrap_err().kind, ErrorCode::Parse);
        // An empty batch is structurally fine.
        let Request::MapBatch(batch) = parse_request(r#"{"op":"map_batch","items":[]}"#).unwrap()
        else {
            unreachable!()
        };
        assert!(batch.items.is_empty());
    }

    #[test]
    fn structural_batch_failures_reject_the_whole_line() {
        let err = parse_request(r#"{"op":"map_batch"}"#).unwrap_err();
        assert_eq!(err.kind, ErrorCode::Parse);
        let items: Vec<String> = (0..=MAX_BATCH_ITEMS).map(|_| "{}".to_string()).collect();
        let line = format!(r#"{{"op":"map_batch","items":[{}]}}"#, items.join(","));
        let err = parse_request(&line).unwrap_err();
        assert!(err.message.contains("limit"));
    }

    #[test]
    fn rid_parses_round_trips_and_stays_out_of_the_digest() {
        let req = |line: &str| match parse_request(line).unwrap() {
            Request::Map(m) => m,
            _ => unreachable!(),
        };
        let bare = req(r#"{"etc":[[2,6],[3,4]],"heuristic":"mct"}"#);
        let hex = req(r#"{"etc":[[2,6],[3,4]],"heuristic":"mct","rid":"9e3779b97f4a7c15"}"#);
        let num = req(r#"{"etc":[[2,6],[3,4]],"heuristic":"mct","rid":42}"#);
        assert_eq!(bare.rid, None);
        assert_eq!(hex.rid, Some(0x9E37_79B9_7F4A_7C15));
        assert_eq!(num.rid, Some(42));
        // Same instance, different (or no) rid: one cache entry.
        assert_eq!(bare.digest(), hex.digest());
        assert_eq!(bare.digest(), num.digest());
        // The rid survives a render/parse round trip; rid-less lines stay
        // byte-identical to v1 (no "rid" key at all).
        let Request::Map(back) = parse_request(&hex.to_line()).unwrap() else {
            unreachable!()
        };
        assert_eq!(back, hex);
        assert!(!bare.to_line().contains("rid"));
        // Null and zero both mean server-assigned.
        assert_eq!(
            req(r#"{"etc":[[1]],"heuristic":"mct","rid":null}"#).rid,
            None
        );
        assert_eq!(
            req(r#"{"etc":[[1]],"heuristic":"mct","rid":"0"}"#).rid,
            None
        );
        // Garbage rids are typed parse rejections.
        for line in [
            r#"{"etc":[[1]],"heuristic":"mct","rid":"not-hex"}"#,
            r#"{"etc":[[1]],"heuristic":"mct","rid":"12345678901234567"}"#,
            r#"{"etc":[[1]],"heuristic":"mct","rid":-3}"#,
            r#"{"etc":[[1]],"heuristic":"mct","rid":true}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.kind, ErrorCode::Parse, "{line}");
        }
    }

    #[test]
    fn trace_requests_carry_an_optional_rid_filter() {
        assert_eq!(
            parse_request(r#"{"op":"trace"}"#).unwrap(),
            Request::Trace { rid: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"trace","v":1,"rid":"2a"}"#).unwrap(),
            Request::Trace { rid: Some(42) }
        );
        assert_eq!(
            parse_request(r#"{"op":"trace","rid":"zz"}"#)
                .unwrap_err()
                .code,
            400
        );
    }

    #[test]
    fn stamp_rid_echoes_after_the_header_and_is_a_noop_for_none() {
        let Request::Map(req) = parse_request(map_line()).unwrap() else {
            unreachable!()
        };
        let mut ws = MapWorkspace::new();
        let result = execute(&req, &mut ws).unwrap();
        // Reply line: rid lands after ok and v.
        let line = stamp_rid(stamp_version(result.to_value(false)), Some(0x2a)).to_string();
        assert!(
            line.starts_with(r#"{"ok":true,"v":1,"rid":"000000000000002a""#),
            "{line}"
        );
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("rid").unwrap().as_str(), Some("000000000000002a"));
        // Batch item (no version stamp): rid lands right after ok.
        let item = stamp_rid(result.to_value(true), Some(1)).to_string();
        assert!(
            item.starts_with(r#"{"ok":true,"rid":"0000000000000001""#),
            "{item}"
        );
        // None leaves the rendering byte-identical.
        assert_eq!(
            stamp_rid(stamp_version(result.to_value(false)), None).to_string(),
            result.to_line(false)
        );
    }

    #[test]
    fn batch_line_round_trips() {
        let Request::Map(a) = parse_request(map_line()).unwrap() else {
            unreachable!()
        };
        let line = r#"{"etc":[[2,6],[3,4]],"heuristic":"kpb","random_ties":9,"iterative":true}"#;
        let Request::Map(b) = parse_request(line).unwrap() else {
            unreachable!()
        };
        let rendered = batch_line(&[a.clone(), b.clone()]);
        let Request::MapBatch(batch) = parse_request(&rendered).unwrap() else {
            unreachable!()
        };
        assert_eq!(batch.items, vec![Ok(a), Ok(b)]);
    }
}
