//! The daemon: TCP acceptor, connection threads, and the worker pool.
//!
//! ```text
//!            ┌──────────────┐   try_push    ┌──────────────┐
//!  client ──▶│ conn thread  │──────────────▶│ BoundedQueue │
//!            │ parse, digest│  full → 503   └──────┬───────┘
//!            │ cache lookup │                      │ pop
//!            │ await reply  │◀── mpsc reply ── ┌───▼────────┐
//!            └──────────────┘                  │ worker × N │
//!                                              │ MapWorkspace│
//!                                              │ execute()  │
//!                                              │ cache.insert│
//!                                              └────────────┘
//! ```
//!
//! Each worker owns one [`MapWorkspace`] for its whole lifetime, so the
//! zero-allocation kernel from PR 1 is amortized across every request the
//! worker ever serves. Connection threads do the cheap work (parse,
//! digest, cache lookup) and block on a per-request reply channel; workers
//! do the expensive mapping. `STATS`, `METRICS`, `TRACE`, and `SHUTDOWN`
//! are handled inline on the connection thread — they must keep working
//! when the queue is full, which is precisely when an operator needs them.
//!
//! Observability rides on `hcs-obs`: every counter and histogram lives in
//! the daemon's metrics registry (so `STATS` JSON and `METRICS` Prometheus
//! text read the same cells), and workers emit `WorkerServe`/`CacheHit`
//! events into a bounded [`TraceBuffer`] served by `TRACE`. Per-decision
//! kernel tracing stays off the daemon's hot path — attach a sink to a
//! `MapWorkspace` in library use or via `nonmakespan trace` instead.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hcs_core::obs::{RequestId, SpanStore, TraceBuffer, TraceEvent, TraceSink};
use hcs_core::MapWorkspace;

use crate::cache::ShardedCache;
use crate::json::{ObjectBuilder, Value};
use crate::protocol::{self, BatchRequest, MapRequest, MapResult, ProtocolError, Request};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::{ServiceStats, ShardIdentity};

/// How long a connection thread waits on a silent socket before it checks
/// the shutdown flag again (bounds shutdown latency for idle connections).
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns a `MapWorkspace`); ≥ 1.
    pub workers: usize,
    /// Bounded queue depth — pending requests beyond this are rejected.
    pub queue_depth: usize,
    /// Total digest-cache entries.
    pub cache_capacity: usize,
    /// Cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Slots in the trace ring served by the `TRACE` verb (0 disables
    /// tracing entirely — event emission becomes a no-op branch).
    pub trace_capacity: usize,
    /// Probability in `[0, 1]` that a worker drops a request with an
    /// [`ErrorCode::Fault`](crate::ErrorCode::Fault) reply instead of
    /// executing it. Deterministic given `fault_seed` and the request
    /// arrival order; `0.0` (the default) disables the hook entirely.
    /// A testing aid for exercising client retry paths — never enable it
    /// on a real deployment.
    pub fault_rate: f64,
    /// Seed for the fault-injection sequence.
    pub fault_seed: u64,
    /// Fleet identity (`serve --shard-id`/`--fleet-size`). When set, the
    /// daemon stamps it into `STATS` and `METRICS` output; standalone
    /// daemons (`None`, the default) expose exactly the pre-fleet shape.
    pub shard: Option<ShardIdentity>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".into(),
            workers: 4,
            queue_depth: 256,
            cache_capacity: 1024,
            cache_shards: 8,
            trace_capacity: 1024,
            fault_rate: 0.0,
            fault_seed: 0,
            shard: None,
        }
    }
}

/// Deterministic per-request fault decisions: request `n` faults iff
/// `splitmix64(seed + n)` falls below `fault_rate * 2^64`. The atomic
/// counter makes the *sequence* deterministic even though which worker
/// observes which request is not.
struct FaultInjector {
    threshold: u64,
    seed: u64,
    counter: AtomicU64,
}

impl FaultInjector {
    fn new(rate: f64, seed: u64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        FaultInjector {
            threshold,
            seed,
            counter: AtomicU64::new(0),
        }
    }

    fn should_fault(&self) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed.wrapping_add(n)) < self.threshold
    }
}

/// The splitmix64 finalizer — a cheap, well-mixed hash of the counter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One queued unit of work.
struct Job {
    request: MapRequest,
    digest: u64,
    /// The request's correlation id (client-supplied or server-assigned).
    rid: u64,
    /// When the connection thread enqueued the job (queue-wait metric).
    enqueued: Instant,
    reply: mpsc::Sender<Result<Arc<MapResult>, ProtocolError>>,
}

/// State shared by every thread of one daemon.
struct Shared {
    queue: BoundedQueue<Job>,
    cache: ShardedCache<MapResult>,
    stats: ServiceStats,
    trace: Arc<TraceBuffer>,
    spans: SpanStore,
    /// Seed for server-assigned rids (mixed from the bound port so two
    /// fleet nodes do not mint colliding id streams).
    rid_seed: u64,
    rid_counter: AtomicU64,
    fault: FaultInjector,
    shutdown: AtomicBool,
    workers: usize,
    local_addr: SocketAddr,
}

impl Shared {
    /// Flips the shutdown flag and closes the queue (idempotent); wakes the
    /// acceptor with a loopback connection so it notices immediately.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.close();
            let _ = TcpStream::connect(self.local_addr);
        }
    }

    /// Mints a rid for a request that arrived without one.
    fn assign_rid(&self) -> u64 {
        let n = self.rid_counter.fetch_add(1, Ordering::Relaxed);
        RequestId::derive(self.rid_seed, n).0
    }

    /// Records one timed phase of a request: a `Span` trace event plus an
    /// entry in the rid-indexed span store (which survives ring wrap).
    fn span(&self, rid: u64, phase: &'static str, elapsed: Duration) {
        let elapsed_us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        if self.trace.enabled() {
            self.trace.emit(TraceEvent::Span {
                rid,
                phase,
                elapsed_us,
            });
        }
        self.spans.record(rid, phase, elapsed_us);
    }
}

/// A running daemon. Dropping the handle does not stop it; send a
/// `{"op":"shutdown"}` request or call [`Server::stop`], then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon: listener, acceptor thread, worker pool.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            stats: ServiceStats::with_shard(config.shard),
            trace: Arc::new(TraceBuffer::new(config.trace_capacity)),
            // The span store rides the trace knob: tracing off ⇒ no span
            // records either (and `TRACE` with a rid returns empty).
            spans: SpanStore::new(config.trace_capacity),
            rid_seed: splitmix64(0xA55E_55ED ^ u64::from(local_addr.port())),
            rid_counter: AtomicU64::new(0),
            fault: FaultInjector::new(config.fault_rate, config.fault_seed),
            shutdown: AtomicBool::new(false),
            workers,
            local_addr,
        });

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("hcs-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hcs-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(Server {
            shared,
            acceptor,
            workers: worker_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Triggers shutdown programmatically (equivalent to a `SHUTDOWN`
    /// request): stop accepting, drain the queue, let workers exit.
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for shutdown to complete — joins the acceptor (which joins
    /// all connection threads) and every worker — and returns the final
    /// stats line.
    pub fn join(self) -> String {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        self.shared
            .stats
            .to_line(self.shared.queue.len(), self.shared.workers)
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("hcs-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &shared);
            })
        {
            connections.push(handle);
        }
        // Opportunistically reap finished connection threads so a
        // long-lived daemon does not accumulate handles.
        connections.retain(|h| !h.is_finished());
    }
    for h in connections {
        let _ = h.join();
    }
}

fn worker_loop(shared: &Shared) {
    // One workspace for the worker's lifetime: every request it serves
    // reuses the same buffers.
    let mut ws = MapWorkspace::new();
    while let Some(job) = shared.queue.pop() {
        let queue_wait = job.enqueued.elapsed();
        shared.stats.queue_wait.record(queue_wait);
        shared.span(job.rid, "queue_wait", queue_wait);
        // Injected-fault hook: drop the request before execution. The job
        // is still binned `served` (a worker consumed it), its result is
        // never cached, and the client sees a retryable `fault` error.
        if shared.fault.should_fault() {
            shared.stats.faults.inc();
            shared.stats.served.inc();
            let _ = job
                .reply
                .send(Err(ProtocolError::fault("injected fault (testing aid)")));
            continue;
        }
        let map_start = Instant::now();
        let result = protocol::execute(&job.request, &mut ws);
        let map_time = map_start.elapsed();
        shared.stats.map_time.record(map_time);
        shared.span(job.rid, "kernel_map", map_time);
        if shared.trace.enabled() {
            shared.trace.emit(TraceEvent::WorkerServe {
                rid: job.rid,
                queue_wait_us: queue_wait.as_micros().min(u128::from(u64::MAX)) as u64,
                map_us: map_time.as_micros().min(u128::from(u64::MAX)) as u64,
            });
        }
        if let Ok(result) = &result {
            shared.cache.insert(job.digest, Arc::clone(result));
        }
        shared.stats.served.inc();
        // A dropped receiver just means the client went away mid-flight.
        let _ = job.reply.send(result);
    }
}

/// Reads `\n`-terminated lines from a stream whose read timeout is
/// [`IDLE_POLL`], preserving partial lines across timeouts (unlike
/// `BufRead::read_line`, which cannot be resumed after an error).
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    filled: usize,
}

enum ReadOutcome {
    Line(String),
    TimedOut,
    Eof,
}

impl LineReader {
    fn read(&mut self) -> io::Result<ReadOutcome> {
        loop {
            if let Some(pos) = self.buf[..self.filled].iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf[..pos].to_vec();
                self.buf.copy_within(pos + 1..self.filled, 0);
                self.filled -= pos + 1;
                return Ok(ReadOutcome::Line(
                    String::from_utf8_lossy(&line).into_owned(),
                ));
            }
            if self.filled == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
            }
            match self.stream.read(&mut self.buf[self.filled..]) {
                Ok(0) => return Ok(ReadOutcome::Eof),
                Ok(n) => self.filled += n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(ReadOutcome::TimedOut)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(IDLE_POLL))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = LineReader {
        stream,
        buf: vec![0; 4096],
        filled: 0,
    };

    loop {
        let line = match reader.read()? {
            ReadOutcome::Eof => return Ok(()),
            ReadOutcome::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            ReadOutcome::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&line, shared);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if matches!(parse_op_fast(&line), Some(Request::Shutdown)) {
            return Ok(());
        }
    }
}

/// Re-derives whether a line was a shutdown request without re-parsing the
/// whole payload (shutdown lines are tiny; anything unparseable is not a
/// shutdown).
fn parse_op_fast(line: &str) -> Option<Request> {
    if line.len() <= 64 {
        protocol::parse_request(line).ok()
    } else {
        None
    }
}

fn handle_line(line: &str, shared: &Shared) -> String {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.stats.bad_requests.inc();
            return e.to_line();
        }
    };
    match request {
        Request::Stats => shared.stats.to_line(shared.queue.len(), shared.workers),
        Request::Metrics => {
            let text = shared
                .stats
                .prometheus_text(shared.queue.len(), shared.workers);
            protocol::stamp_version(
                ObjectBuilder::new()
                    .field("ok", Value::Bool(true))
                    .field("metrics", Value::String(text))
                    .build(),
            )
            .to_string()
        }
        Request::Trace { rid: None } => {
            let events: Vec<String> = shared
                .trace
                .snapshot()
                .into_iter()
                .map(|(seq, event)| event.to_json_line(seq))
                .collect();
            format!(
                "{{\"ok\":true,\"v\":{},\"events\":[{}]}}",
                protocol::PROTOCOL_VERSION,
                events.join(",")
            )
        }
        Request::Trace { rid: Some(rid) } => {
            let events: Vec<String> = shared
                .trace
                .snapshot_for(rid)
                .into_iter()
                .map(|(seq, event)| event.to_json_line(seq))
                .collect();
            let spans: Vec<String> = shared
                .spans
                .get(rid)
                .map(|record| {
                    record
                        .phases
                        .iter()
                        .map(|p| {
                            format!(
                                "{{\"phase\":\"{}\",\"elapsed_us\":{}}}",
                                p.phase, p.elapsed_us
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            format!(
                "{{\"ok\":true,\"v\":{},\"rid\":\"{}\",\"events\":[{}],\"spans\":[{}]}}",
                protocol::PROTOCOL_VERSION,
                RequestId(rid).to_hex(),
                events.join(","),
                spans.join(",")
            )
        }
        Request::Shutdown => {
            shared.begin_shutdown();
            protocol::stamp_version(
                ObjectBuilder::new()
                    .field("ok", Value::Bool(true))
                    .field("draining", Value::Bool(true))
                    .build(),
            )
            .to_string()
        }
        Request::Map(request) => handle_map(request, shared),
        Request::MapBatch(batch) => handle_batch(batch, shared),
    }
}

/// Renders a reply line while recording serialization time (stat, and a
/// `"serialize"` phase span under `rid`). `echo` is the client-supplied
/// rid, stamped into the line; server-assigned rids are *not* echoed, so
/// v1 replies stay byte-identical to the pre-correlation protocol.
fn render_reply(
    shared: &Shared,
    result: &MapResult,
    cached: bool,
    rid: u64,
    echo: Option<u64>,
) -> String {
    let start = Instant::now();
    let line = match echo {
        None => result.to_line(cached),
        Some(_) => {
            protocol::stamp_rid(protocol::stamp_version(result.to_value(cached)), echo).to_string()
        }
    };
    let elapsed = start.elapsed();
    shared.stats.serialize.record(elapsed);
    shared.span(rid, "serialize", elapsed);
    line
}

fn handle_map(request: MapRequest, shared: &Shared) -> String {
    shared.stats.submitted.inc();
    let start = Instant::now();
    let digest = request.digest();
    let echo = request.rid;
    let rid = echo.unwrap_or_else(|| shared.assign_rid());

    let probe_start = Instant::now();
    let hit = shared.cache.get(digest);
    shared.span(rid, "cache_probe", probe_start.elapsed());
    if let Some(hit) = hit {
        shared.stats.cache_hits.inc();
        if shared.trace.enabled() {
            shared.trace.emit(TraceEvent::CacheHit { digest, rid });
        }
        let line = render_reply(shared, &hit, true, rid, echo);
        shared.stats.latency.record(start.elapsed());
        return line;
    }

    let (tx, rx) = mpsc::channel();
    let job = Job {
        request,
        digest,
        rid,
        enqueued: Instant::now(),
        reply: tx,
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.stats.rejected.inc();
            return ProtocolError::shed("queue full").to_line();
        }
        Err(PushError::Closed) => {
            shared.stats.rejected.inc();
            return ProtocolError::shed("shutting down").to_line();
        }
    }
    match rx.recv() {
        Ok(Ok(result)) => {
            let line = render_reply(shared, &result, false, rid, echo);
            shared.stats.latency.record(start.elapsed());
            line
        }
        Ok(Err(e)) => e.to_line(),
        // Worker pool gone before computing the job (only possible when a
        // shutdown races the push) — report as shedding.
        Err(_) => ProtocolError::shed("shutting down").to_line(),
    }
}

/// One batch slot: either already answerable (parse failure, cache hit,
/// shed) or waiting on a worker's reply channel.
enum Pending {
    Ready(Value),
    /// A worker owes the answer; the client-supplied rid (if any) is kept
    /// so the gathered item can echo it.
    Wait(
        Option<u64>,
        mpsc::Receiver<Result<Arc<MapResult>, ProtocolError>>,
    ),
}

/// The batch pipeline. Valid items are pushed onto the *same* bounded
/// queue as single requests — all workers can pull from one batch
/// concurrently — and gathered in wire order afterwards, so the reply's
/// `items` array lines up index-for-index with the request. Every item is
/// binned exactly like a single request would be (`submitted` +
/// `served`/`cache_hits`/`rejected`, or `bad_requests` for item-level
/// parse failures), keeping the accounting invariant intact under
/// batching.
fn handle_batch(batch: BatchRequest, shared: &Shared) -> String {
    shared.stats.batched.inc();
    shared.stats.batch_items.add(batch.items.len() as u64);
    let start = Instant::now();

    // Phase 1: fan out. Cheap answers are resolved inline; the rest are
    // enqueued so the worker pool computes them concurrently.
    let slots: Vec<Pending> = batch
        .items
        .into_iter()
        .map(|item| {
            let request = match item {
                Ok(r) => r,
                Err(e) => {
                    shared.stats.bad_requests.inc();
                    return Pending::Ready(e.to_value());
                }
            };
            shared.stats.submitted.inc();
            let digest = request.digest();
            let echo = request.rid;
            let rid = echo.unwrap_or_else(|| shared.assign_rid());
            let probe_start = Instant::now();
            let hit = shared.cache.get(digest);
            shared.span(rid, "cache_probe", probe_start.elapsed());
            if let Some(hit) = hit {
                shared.stats.cache_hits.inc();
                if shared.trace.enabled() {
                    shared.trace.emit(TraceEvent::CacheHit { digest, rid });
                }
                return Pending::Ready(protocol::stamp_rid(hit.to_value(true), echo));
            }
            let (tx, rx) = mpsc::channel();
            let job = Job {
                request,
                digest,
                rid,
                enqueued: Instant::now(),
                reply: tx,
            };
            match shared.queue.try_push(job) {
                Ok(()) => Pending::Wait(echo, rx),
                Err(PushError::Full) => {
                    shared.stats.rejected.inc();
                    Pending::Ready(ProtocolError::shed("queue full").to_value())
                }
                Err(PushError::Closed) => {
                    shared.stats.rejected.inc();
                    Pending::Ready(ProtocolError::shed("shutting down").to_value())
                }
            }
        })
        .collect();

    // Phase 2: gather in order. Waiting on item i never delays the
    // *computation* of item j > i — only the reply assembly is ordered.
    let items: Vec<Value> = slots
        .into_iter()
        .map(|slot| match slot {
            Pending::Ready(v) => v,
            Pending::Wait(echo, rx) => match rx.recv() {
                Ok(Ok(result)) => protocol::stamp_rid(result.to_value(false), echo),
                Ok(Err(e)) => e.to_value(),
                Err(_) => ProtocolError::shed("shutting down").to_value(),
            },
        })
        .collect();

    // One end-to-end latency sample per batch line (not per item): the
    // histogram tracks answered lines.
    shared.stats.latency.record(start.elapsed());
    protocol::stamp_version(
        ObjectBuilder::new()
            .field("ok", Value::Bool(true))
            .field("items", Value::Array(items))
            .build(),
    )
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn send_line(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    #[test]
    fn start_serve_shutdown_lifecycle() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let reply = send_line(addr, r#"{"etc":[[2,6],[3,4],[8,3]],"heuristic":"min-min"}"#);
        let v = crate::json::parse(&reply).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("makespan").unwrap().as_f64(), Some(5.0));

        let stats = send_line(addr, r#"{"op":"stats"}"#);
        let v = crate::json::parse(&stats).unwrap();
        assert_eq!(
            v.get("stats").unwrap().get("submitted").unwrap().as_u64(),
            Some(1)
        );

        let bye = send_line(addr, r#"{"op":"shutdown"}"#);
        assert!(bye.contains("draining"));
        let final_stats = server.join();
        assert!(final_stats.contains("\"served\":1"), "{final_stats}");
    }

    #[test]
    fn malformed_lines_get_400_and_do_not_kill_the_connection() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"garbage\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"code\":400"), "{reply}");

        // Same connection still works.
        stream
            .write_all(b"{\"etc\":[[1,2]],\"heuristic\":\"mct\"}\n")
            .unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "{reply}");

        server.stop();
        server.join();
    }

    #[test]
    fn rid_requests_echo_and_trace_filters_to_one_request() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let reply = send_line(
            addr,
            r#"{"etc":[[2,6],[3,4]],"heuristic":"mct","rid":"2a"}"#,
        );
        let v = crate::json::parse(&reply).unwrap();
        assert_eq!(v.get("rid").unwrap().as_str(), Some("000000000000002a"));
        // rid-less requests get a server-assigned id internally but the
        // reply stays byte-compatible with v1: no rid key.
        let bare = send_line(addr, r#"{"etc":[[9,1]],"heuristic":"mct"}"#);
        assert!(!bare.contains("\"rid\""), "{bare}");

        // The rid-filtered TRACE reconstructs the request's full phase
        // timeline in serving order, and only its own events.
        let trace = send_line(addr, r#"{"op":"trace","rid":"2a"}"#);
        let tv = crate::json::parse(&trace).unwrap();
        assert_eq!(tv.get("rid").unwrap().as_str(), Some("000000000000002a"));
        let phases: Vec<String> = tv
            .get("spans")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("phase").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(
            phases,
            ["cache_probe", "queue_wait", "kernel_map", "serialize"]
        );
        let events = tv.get("events").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        for e in events {
            assert_eq!(e.get("rid").unwrap().as_str(), Some("000000000000002a"));
        }

        // A batch item carrying a rid echoes it too.
        let batch = send_line(
            addr,
            r#"{"op":"map_batch","items":[{"etc":[[5,1]],"heuristic":"mct","rid":"2b"}]}"#,
        );
        let bv = crate::json::parse(&batch).unwrap();
        let item = &bv.get("items").unwrap().as_array().unwrap()[0];
        assert_eq!(item.get("rid").unwrap().as_str(), Some("000000000000002b"));

        server.stop();
        server.join();
    }

    #[test]
    fn stop_unblocks_join_without_clients() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        server.stop();
        let stats = server.join();
        assert!(stats.contains("\"submitted\":0"), "{stats}");
    }
}
