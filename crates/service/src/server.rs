//! The daemon: a nonblocking readiness loop (epoll on Linux, poll(2)
//! fallback) fronting the bounded queue + worker pool.
//!
//! ```text
//!             ┌───────────────────────────────┐  try_push   ┌──────────────┐
//!  clients ──▶│ event loop (1 thread)         │────────────▶│ BoundedQueue │
//!   (many)    │  accept / read / parse        │ full → 503  └──────┬───────┘
//!             │  per-conn ConnMachine         │                    │ pop
//!             │  cache probe, reply ordering  │             ┌──────▼───────┐
//!             │  render + flush               │◀────────────│ worker × N   │
//!             └───────────────▲───────────────┘ completion  │ MapWorkspace │
//!                             │ UDP waker      channel      │ execute()    │
//!                             └────────────────────────────·│ cache.insert │
//!                                                           └──────────────┘
//! ```
//!
//! One thread owns every socket: the listener, a loopback UDP *waker*, and
//! all client connections, each wrapped in a [`ConnMachine`] (zero-copy
//! line framing in, ordered reply slots out — see [`crate::conn`]). Cheap
//! work (parse, digest, cache probe, control verbs) happens inline on the
//! loop; mapping runs on the worker pool exactly as before, except workers
//! now hand results back through an `mpsc` completion channel and nudge
//! the sleeping loop with a one-byte datagram to the waker socket. The
//! queue itself is untouched.
//!
//! `STATS`, `METRICS`, `TRACE`, and `SHUTDOWN` are answered inline on the
//! event loop — they must keep working when the queue is full, which is
//! precisely when an operator needs them.
//!
//! Framing hardening (new with the event loop): request lines longer than
//! [`ServeConfig::max_line_bytes`] get a typed 400 and the connection
//! resynchronizes at the next newline; connections idle longer than
//! [`ServeConfig::idle_timeout`] with nothing in flight are closed
//! (slow-loris guard). Set `HCS_FORCE_POLL=1` to run the portable poll(2)
//! backend on Linux.
//!
//! Observability rides on `hcs-obs` exactly as before, plus three
//! event-loop gauges: open connections, loop wakeups, and the read-buffer
//! high-water mark. Every request keeps its four phase spans
//! (`cache_probe` → `queue_wait` → `kernel_map` → `serialize`) across the
//! loop ↔ worker handoff.

use std::io::{self, ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hcs_core::obs::{RequestId, SpanStore, TraceBuffer, TraceEvent, TraceSink};
use hcs_core::MapWorkspace;

use crate::cache::ShardedCache;
use crate::config::ServeConfig;
use crate::conn::{ConnMachine, Frame, SlotId};
use crate::protocol::{self, BatchRequest, MapRequest, MapResult, ProtocolError, Reply, Request};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::ServiceStats;
use crate::sys::Poller;

/// Poller token of the TCP listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Poller token of the UDP waker socket.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Upper bound on the poll timeout — bounds shutdown/idle-sweep latency
/// exactly like the old per-connection `IDLE_POLL` read timeout did.
const MAX_TICK: Duration = Duration::from_millis(200);

/// Read-side backpressure cap: once a connection's unflushed reply
/// backlog ([`ConnMachine::out_backlog`]) reaches this, the loop stops
/// reading it (and disarms read interest) until the peer drains replies.
/// Requests then pile up in the kernel socket buffers and TCP flow
/// control pushes back on the client — the moral equivalent of the old
/// thread-per-connection server blocking in `write_all`.
const READ_BACKPRESSURE: usize = 256 * 1024;

/// Hard drain deadline for shutdown: connections that still owe replies
/// this long after shutdown began are closed anyway, so [`Server::join`]
/// terminates even when a peer never reads (or `idle_timeout` is zero and
/// the sweep is disabled).
const SHUTDOWN_DRAIN_GRACE: Duration = Duration::from_secs(2);

/// Deterministic per-request fault decisions: request `n` faults iff
/// `splitmix64(seed + n)` falls below `fault_rate * 2^64`. The atomic
/// counter makes the *sequence* deterministic even though which worker
/// observes which request is not.
struct FaultInjector {
    threshold: u64,
    seed: u64,
    counter: AtomicU64,
}

impl FaultInjector {
    fn new(rate: f64, seed: u64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        FaultInjector {
            threshold,
            seed,
            counter: AtomicU64::new(0),
        }
    }

    fn should_fault(&self) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.seed.wrapping_add(n)) < self.threshold
    }
}

/// The splitmix64 finalizer — a cheap, well-mixed hash of the counter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Routes a worker completion back to the reply slot that is waiting for
/// it. The generation guards against a connection slot index being reused
/// after its client disconnected mid-flight.
#[derive(Clone, Copy, Debug)]
struct DoneKey {
    conn: usize,
    gen: u64,
    slot: SlotId,
    /// `Some(i)` routes to item `i` of a batch slot.
    item: Option<u32>,
}

/// One queued unit of work.
struct Job {
    request: MapRequest,
    digest: u64,
    /// The request's correlation id (client-supplied or server-assigned).
    rid: u64,
    /// The client-supplied rid to echo (never echoed when server-assigned).
    echo: Option<u64>,
    /// When the request line was parsed (end-to-end latency metric).
    started: Instant,
    /// When the event loop enqueued the job (queue-wait metric).
    enqueued: Instant,
    done: DoneKey,
}

/// A finished job on its way back from a worker to the event loop.
struct Completion {
    done: DoneKey,
    rid: u64,
    echo: Option<u64>,
    started: Instant,
    result: Result<Arc<MapResult>, ProtocolError>,
}

/// State shared by every thread of one daemon.
struct Shared {
    queue: BoundedQueue<Job>,
    cache: ShardedCache<MapResult>,
    stats: ServiceStats,
    trace: Arc<TraceBuffer>,
    spans: SpanStore,
    /// Seed for server-assigned rids (mixed from the bound port so two
    /// fleet nodes do not mint colliding id streams).
    rid_seed: u64,
    rid_counter: AtomicU64,
    fault: FaultInjector,
    shutdown: AtomicBool,
    workers: usize,
    local_addr: SocketAddr,
    /// Connected to the event loop's waker socket; any thread can nudge
    /// the loop out of its poll sleep with a one-byte datagram.
    waker: UdpSocket,
}

impl Shared {
    /// Flips the shutdown flag and closes the queue (idempotent); wakes
    /// the event loop so it notices immediately.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.close();
            self.wake();
        }
    }

    /// Nudges the event loop out of its poll sleep.
    fn wake(&self) {
        let _ = self.waker.send(&[1]);
    }

    /// Mints a rid for a request that arrived without one.
    fn assign_rid(&self) -> u64 {
        let n = self.rid_counter.fetch_add(1, Ordering::Relaxed);
        RequestId::derive(self.rid_seed, n).0
    }

    /// Records one timed phase of a request: a `Span` trace event plus an
    /// entry in the rid-indexed span store (which survives ring wrap).
    fn span(&self, rid: u64, phase: &'static str, elapsed: Duration) {
        let elapsed_us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        if self.trace.enabled() {
            self.trace.emit(TraceEvent::Span {
                rid,
                phase,
                elapsed_us,
            });
        }
        self.spans.record(rid, phase, elapsed_us);
    }
}

/// A running daemon. Dropping the handle does not stop it; send a
/// `{"op":"shutdown"}` request or call [`Server::stop`], then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    event: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon: listener, event-loop thread, worker
    /// pool.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // Loopback waker pair: the loop polls `wake_rx`; `Shared::wake`
        // sends through the connected peer.
        let wake_rx = UdpSocket::bind("127.0.0.1:0")?;
        wake_rx.set_nonblocking(true)?;
        let waker = UdpSocket::bind("127.0.0.1:0")?;
        waker.connect(wake_rx.local_addr()?)?;

        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_depth),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            stats: ServiceStats::with_shard(config.shard),
            trace: Arc::new(TraceBuffer::new(config.trace_capacity)),
            // The span store rides the trace knob: tracing off ⇒ no span
            // records either (and `TRACE` with a rid returns empty).
            spans: SpanStore::new(config.trace_capacity),
            rid_seed: splitmix64(0xA55E_55ED ^ u64::from(local_addr.port())),
            rid_counter: AtomicU64::new(0),
            fault: FaultInjector::new(config.fault_rate, config.fault_seed),
            shutdown: AtomicBool::new(false),
            workers,
            local_addr,
            waker,
        });

        let (completion_tx, completion_rx) = mpsc::channel();
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let tx = completion_tx.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("hcs-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &tx))?,
            );
        }
        drop(completion_tx);

        let event = {
            let shared = Arc::clone(&shared);
            let force_poll = std::env::var("HCS_FORCE_POLL").is_ok_and(|v| v == "1");
            let loop_cfg = LoopConfig {
                max_line_bytes: config.max_line_bytes,
                idle_timeout: config.idle_timeout,
                force_poll,
            };
            std::thread::Builder::new()
                .name("hcs-event-loop".into())
                .spawn(move || {
                    if let Err(e) = event_loop(listener, wake_rx, completion_rx, &shared, &loop_cfg)
                    {
                        // A dead event loop must not leave workers parked
                        // forever: fail towards shutdown.
                        eprintln!("hcs-service event loop failed: {e}");
                        shared.begin_shutdown();
                    }
                })?
        };

        Ok(Server {
            shared,
            event,
            workers: worker_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Triggers shutdown programmatically (equivalent to a `SHUTDOWN`
    /// request): stop accepting, drain the queue, let workers exit.
    pub fn stop(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for shutdown to complete — joins the event loop (which closes
    /// every connection) and every worker — and returns the final stats
    /// line.
    pub fn join(self) -> String {
        let _ = self.event.join();
        for w in self.workers {
            let _ = w.join();
        }
        self.shared
            .stats
            .to_line(self.shared.queue.len(), self.shared.workers)
    }
}

fn worker_loop(shared: &Shared, completions: &mpsc::Sender<Completion>) {
    // One workspace for the worker's lifetime: every request it serves
    // reuses the same buffers.
    let mut ws = MapWorkspace::new();
    while let Some(job) = shared.queue.pop() {
        let queue_wait = job.enqueued.elapsed();
        shared.stats.queue_wait.record(queue_wait);
        shared.span(job.rid, "queue_wait", queue_wait);
        // Injected-fault hook: drop the request before execution. The job
        // is still binned `served` (a worker consumed it), its result is
        // never cached, and the client sees a retryable `fault` error.
        let result = if shared.fault.should_fault() {
            shared.stats.faults.inc();
            Err(ProtocolError::fault("injected fault (testing aid)"))
        } else {
            let map_start = Instant::now();
            let result = protocol::execute(&job.request, &mut ws);
            let map_time = map_start.elapsed();
            shared.stats.map_time.record(map_time);
            shared.span(job.rid, "kernel_map", map_time);
            if shared.trace.enabled() {
                shared.trace.emit(TraceEvent::WorkerServe {
                    rid: job.rid,
                    queue_wait_us: queue_wait.as_micros().min(u128::from(u64::MAX)) as u64,
                    map_us: map_time.as_micros().min(u128::from(u64::MAX)) as u64,
                });
            }
            if let Ok(result) = &result {
                shared.cache.insert(job.digest, Arc::clone(result));
            }
            result
        };
        shared.stats.served.inc();
        // A dropped receiver just means the daemon is going away.
        let _ = completions.send(Completion {
            done: job.done,
            rid: job.rid,
            echo: job.echo,
            started: job.started,
            result,
        });
        shared.wake();
    }
}

/// Event-loop-only configuration extracted from [`ServeConfig`].
struct LoopConfig {
    max_line_bytes: usize,
    idle_timeout: Duration,
    force_poll: bool,
}

/// One client connection owned by the event loop.
struct Conn {
    stream: TcpStream,
    machine: ConnMachine,
    gen: u64,
    last_activity: Instant,
    /// Close once every pending reply is flushed (set by `SHUTDOWN`).
    close_after_flush: bool,
    /// Read interest currently armed in the poller (disarmed while the
    /// reply backlog exceeds [`READ_BACKPRESSURE`]).
    read_armed: bool,
    /// Write interest currently armed in the poller.
    writable_armed: bool,
    /// Marked for teardown at the end of the current pass.
    dead: bool,
}

/// The single-threaded readiness loop; owns every socket of the daemon.
fn event_loop(
    listener: TcpListener,
    wake_rx: UdpSocket,
    completions: mpsc::Receiver<Completion>,
    shared: &Shared,
    cfg: &LoopConfig,
) -> io::Result<()> {
    let mut poller = Poller::new(cfg.force_poll)?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, false)?;
    poller.register(wake_rx.as_raw_fd(), TOKEN_WAKER, false)?;
    let mut listener = Some(listener);

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut gens: Vec<u64> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = Vec::new();
    let mut read_hwm = 0usize;
    // Open-connection count is maintained incrementally: every per-pass
    // cost must stay O(ready events), never O(total connections), or 10k
    // idle sockets would tax the latency of every active request.
    let mut open_count = 0usize;

    // Poll timeout: fine-grained enough to enforce a sub-second idle
    // timeout promptly, capped at MAX_TICK.
    let tick = if cfg.idle_timeout.is_zero() {
        MAX_TICK
    } else {
        (cfg.idle_timeout / 4).clamp(Duration::from_millis(10), MAX_TICK)
    };
    let mut next_sweep = Instant::now() + tick;
    // Set when shutdown is first observed; past it, connections still
    // owing replies are closed anyway so the loop always terminates.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        poller.wait(&mut events, tick)?;
        shared.stats.event_wakeups.inc();
        let mut freed: Vec<usize> = Vec::new();

        for &ev in &events {
            match ev.token {
                TOKEN_LISTENER => {
                    let Some(l) = listener.as_ref() else { continue };
                    open_count +=
                        accept_ready(l, &mut poller, &mut conns, &mut gens, &mut free, cfg);
                }
                TOKEN_WAKER => {
                    let mut buf = [0u8; 16];
                    while wake_rx.recv(&mut buf).is_ok() {}
                }
                token => {
                    let idx = token as usize;
                    let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                        continue;
                    };
                    if ev.hangup && !ev.readable {
                        conn.dead = true;
                    }
                    if ev.readable && !conn.dead {
                        conn_readable(conn, idx, shared, cfg, &mut read_hwm);
                    }
                    if !conn.dead && (ev.writable || conn.machine.wants_write()) {
                        flush_conn(conn);
                    }
                    finish_pass(conn, idx, &mut poller, &mut freed);
                }
            }
        }

        // Worker completions: route each to its reply slot, then flush
        // that connection opportunistically.
        while let Ok(c) = completions.try_recv() {
            let idx = c.done.conn;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != c.done.gen {
                continue;
            }
            deliver_completion(conn, c, shared);
            flush_conn(conn);
            finish_pass(conn, idx, &mut poller, &mut freed);
        }

        // Slow-loris sweep: close connections idle past the timeout with
        // no worker reply outstanding (a stalled reader with queued work
        // still owed to it is the worker pool's slowness, not the peer's).
        // Rate-limited to one scan per tick — the sweep is O(total
        // connections), so running it on every wakeup would put the slab
        // scan on the latency path of every active request.
        if !cfg.idle_timeout.is_zero() && Instant::now() >= next_sweep {
            let now = Instant::now();
            next_sweep = now + tick;
            for (idx, slot) in conns.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else { continue };
                if !conn.dead
                    && !conn.machine.awaiting_worker()
                    && now.duration_since(conn.last_activity) >= cfg.idle_timeout
                {
                    conn.dead = true;
                    finish_pass(conn, idx, &mut poller, &mut freed);
                }
            }
        }

        if shared.shutdown.load(Ordering::SeqCst) {
            if let Some(l) = listener.take() {
                poller.deregister(l.as_raw_fd());
                // Dropping the listener refuses new connections at once.
            }
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + SHUTDOWN_DRAIN_GRACE);
            // Past the grace period, a peer that never drained its replies
            // (or whose worker completion will never come) is closed
            // anyway — join() liveness beats delivering the last bytes.
            let force = Instant::now() >= deadline;
            for (idx, slot) in conns.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else { continue };
                if force || !conn.machine.has_pending() {
                    conn.dead = true;
                    finish_pass(conn, idx, &mut poller, &mut freed);
                }
            }
            // Every remaining connection freed this pass means drained.
            if open_count == freed.len() {
                return Ok(());
            }
        }

        open_count -= freed.len();
        for idx in freed {
            conns[idx] = None;
            free.push(idx);
            // Retire the slot's generation so a completion still in flight
            // for the old connection can never match a future occupant:
            // the slab generation — not the dropped Conn's copy — is what
            // the next `accept_ready` stamps into the reused slot.
            gens[idx] = gens[idx].wrapping_add(1);
        }
        shared.stats.open_connections.set(open_count as u64);
    }
}

/// Drains the accept backlog into registered, nonblocking connections;
/// returns how many were admitted.
fn accept_ready(
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut Vec<Option<Conn>>,
    gens: &mut Vec<u64>,
    free: &mut Vec<usize>,
    cfg: &LoopConfig,
) -> usize {
    let mut admitted = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stream.set_nodelay(true).ok();
                let idx = match free.pop() {
                    Some(idx) => idx,
                    None => {
                        conns.push(None);
                        gens.push(0);
                        conns.len() - 1
                    }
                };
                if poller
                    .register(stream.as_raw_fd(), idx as u64, false)
                    .is_err()
                {
                    free.push(idx);
                    continue;
                }
                conns[idx] = Some(Conn {
                    stream,
                    machine: ConnMachine::new(cfg.max_line_bytes),
                    gen: gens[idx],
                    last_activity: Instant::now(),
                    close_after_flush: false,
                    read_armed: true,
                    writable_armed: false,
                    dead: false,
                });
                admitted += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    admitted
}

/// Reads until `WouldBlock` (or the reply backlog passes the
/// backpressure cap), dispatching every complete frame.
fn conn_readable(
    conn: &mut Conn,
    idx: usize,
    shared: &Shared,
    cfg: &LoopConfig,
    read_hwm: &mut usize,
) {
    loop {
        // Backpressure: a pipelining peer that is not draining replies
        // stops being read — further requests stay in the kernel socket
        // buffers (finish_pass disarms read interest until the backlog
        // clears, so the level-triggered poller does not spin).
        if conn.machine.out_backlog() >= READ_BACKPRESSURE {
            break;
        }
        let space = conn.machine.read_space();
        match conn.stream.read(space) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.machine.commit(n);
                conn.last_activity = Instant::now();
                process_frames(conn, idx, shared, cfg);
                if conn.dead {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.machine.read_hwm() > *read_hwm {
        *read_hwm = conn.machine.read_hwm();
        shared.stats.read_buffer_hwm.set(*read_hwm as u64);
    }
}

/// Frames buffered bytes into requests and dispatches each one.
fn process_frames(conn: &mut Conn, idx: usize, shared: &Shared, cfg: &LoopConfig) {
    while let Some(frame) = conn.machine.next_frame() {
        match frame {
            Frame::Oversized => {
                shared.stats.bad_requests.inc();
                let slot = conn.machine.open_slot();
                let reply = Reply::Error(ProtocolError::bad_request(format!(
                    "request line exceeds max_line_bytes ({})",
                    cfg.max_line_bytes
                )));
                conn.machine.fill(slot, line_bytes(&reply));
            }
            Frame::Line(range) => {
                let parsed = {
                    let bytes = conn.machine.line(range);
                    if bytes.iter().all(u8::is_ascii_whitespace) {
                        continue;
                    }
                    Request::parse(bytes)
                };
                dispatch(conn, idx, parsed, shared);
            }
        }
    }
}

/// Handles one parsed request on the event loop. Control verbs answer
/// inline; map work reserves a slot and goes through the queue.
fn dispatch(conn: &mut Conn, idx: usize, parsed: Result<Request, ProtocolError>, shared: &Shared) {
    let request = match parsed {
        Ok(r) => r,
        Err(e) => {
            shared.stats.bad_requests.inc();
            let slot = conn.machine.open_slot();
            conn.machine.fill(slot, line_bytes(&Reply::Error(e)));
            return;
        }
    };
    match request {
        Request::Stats => {
            let reply = Reply::Stats {
                line: shared.stats.to_line(shared.queue.len(), shared.workers),
            };
            let slot = conn.machine.open_slot();
            conn.machine.fill(slot, line_bytes(&reply));
        }
        Request::Metrics => {
            let reply = Reply::Metrics {
                text: shared
                    .stats
                    .prometheus_text(shared.queue.len(), shared.workers),
            };
            let slot = conn.machine.open_slot();
            conn.machine.fill(slot, line_bytes(&reply));
        }
        Request::Trace { rid } => {
            let reply = Reply::Trace {
                line: render_trace(shared, rid),
            };
            let slot = conn.machine.open_slot();
            conn.machine.fill(slot, line_bytes(&reply));
        }
        Request::Shutdown => {
            shared.begin_shutdown();
            let slot = conn.machine.open_slot();
            conn.machine.fill(slot, line_bytes(&Reply::Draining));
            conn.close_after_flush = true;
        }
        Request::Map(request) => handle_map(conn, idx, request, shared),
        Request::MapBatch(batch) => handle_batch(conn, idx, batch, shared),
    }
}

/// Renders a `TRACE` reply line (shared by the rid-filtered and full
/// forms; byte-identical to the thread-per-connection daemon).
fn render_trace(shared: &Shared, rid: Option<u64>) -> String {
    match rid {
        None => {
            let events: Vec<String> = shared
                .trace
                .snapshot()
                .into_iter()
                .map(|(seq, event)| event.to_json_line(seq))
                .collect();
            format!(
                "{{\"ok\":true,\"v\":{},\"events\":[{}]}}",
                protocol::PROTOCOL_VERSION,
                events.join(",")
            )
        }
        Some(rid) => {
            let events: Vec<String> = shared
                .trace
                .snapshot_for(rid)
                .into_iter()
                .map(|(seq, event)| event.to_json_line(seq))
                .collect();
            let spans: Vec<String> = shared
                .spans
                .get(rid)
                .map(|record| {
                    record
                        .phases
                        .iter()
                        .map(|p| {
                            format!(
                                "{{\"phase\":\"{}\",\"elapsed_us\":{}}}",
                                p.phase, p.elapsed_us
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            format!(
                "{{\"ok\":true,\"v\":{},\"rid\":\"{}\",\"events\":[{}],\"spans\":[{}]}}",
                protocol::PROTOCOL_VERSION,
                RequestId(rid).to_hex(),
                events.join(","),
                spans.join(",")
            )
        }
    }
}

/// A single map request: probe the cache inline, otherwise reserve a slot
/// and enqueue for the worker pool.
fn handle_map(conn: &mut Conn, idx: usize, request: MapRequest, shared: &Shared) {
    shared.stats.submitted.inc();
    let started = Instant::now();
    let digest = request.digest();
    let echo = request.rid;
    let rid = echo.unwrap_or_else(|| shared.assign_rid());

    let probe_start = Instant::now();
    let hit = shared.cache.get(digest);
    shared.span(rid, "cache_probe", probe_start.elapsed());
    let slot = conn.machine.open_slot();
    if let Some(hit) = hit {
        shared.stats.cache_hits.inc();
        if shared.trace.enabled() {
            shared.trace.emit(TraceEvent::CacheHit { digest, rid });
        }
        let bytes = render_timed(
            shared,
            rid,
            &Reply::Map {
                result: hit,
                cached: true,
                rid: echo,
            },
        );
        conn.machine.fill(slot, bytes);
        shared.stats.latency.record(started.elapsed());
        return;
    }

    let job = Job {
        request,
        digest,
        rid,
        echo,
        started,
        enqueued: Instant::now(),
        done: DoneKey {
            conn: idx,
            gen: conn.gen,
            slot,
            item: None,
        },
    };
    if let Err(e) = shared.queue.try_push(job) {
        shared.stats.rejected.inc();
        conn.machine
            .fill(slot, line_bytes(&Reply::Error(shed_error(e))));
    }
}

/// The batch pipeline, streaming edition: every item is resolved inline
/// (parse failure, cache hit, shed) or enqueued; the [`ConnMachine`]
/// batch slot streams items out in wire order as they complete. Every
/// item is binned exactly like a single request would be, keeping the
/// accounting invariant intact under batching.
fn handle_batch(conn: &mut Conn, idx: usize, batch: BatchRequest, shared: &Shared) {
    shared.stats.batched.inc();
    shared.stats.batch_items.add(batch.items.len() as u64);
    let started = Instant::now();
    let slot = conn.machine.open_batch(batch.items.len());
    let mut outstanding = 0u32;

    for (i, item) in batch.items.into_iter().enumerate() {
        let request = match item {
            Ok(r) => r,
            Err(e) => {
                shared.stats.bad_requests.inc();
                conn.machine
                    .fill_batch_item(slot, i, e.to_value().to_string());
                continue;
            }
        };
        shared.stats.submitted.inc();
        let digest = request.digest();
        let echo = request.rid;
        let rid = echo.unwrap_or_else(|| shared.assign_rid());
        let probe_start = Instant::now();
        let hit = shared.cache.get(digest);
        shared.span(rid, "cache_probe", probe_start.elapsed());
        if let Some(hit) = hit {
            shared.stats.cache_hits.inc();
            if shared.trace.enabled() {
                shared.trace.emit(TraceEvent::CacheHit { digest, rid });
            }
            conn.machine.fill_batch_item(
                slot,
                i,
                protocol::stamp_rid(hit.to_value(true), echo).to_string(),
            );
            continue;
        }
        let job = Job {
            request,
            digest,
            rid,
            echo,
            started,
            enqueued: Instant::now(),
            done: DoneKey {
                conn: idx,
                gen: conn.gen,
                slot,
                item: Some(i as u32),
            },
        };
        match shared.queue.try_push(job) {
            Ok(()) => outstanding += 1,
            Err(e) => {
                shared.stats.rejected.inc();
                conn.machine
                    .fill_batch_item(slot, i, shed_error(e).to_value().to_string());
            }
        }
    }

    if outstanding == 0 {
        // Fully resolved inline: one end-to-end latency sample per batch
        // line (not per item) — the histogram tracks answered lines.
        shared.stats.latency.record(started.elapsed());
    }
}

fn shed_error(e: PushError) -> ProtocolError {
    match e {
        PushError::Full => ProtocolError::shed("queue full"),
        PushError::Closed => ProtocolError::shed("shutting down"),
    }
}

/// Routes one worker completion into its connection's reply slot.
fn deliver_completion(conn: &mut Conn, c: Completion, shared: &Shared) {
    match c.done.item {
        None => {
            let bytes = match c.result {
                Ok(result) => render_timed(
                    shared,
                    c.rid,
                    &Reply::Map {
                        result,
                        cached: false,
                        rid: c.echo,
                    },
                ),
                Err(e) => line_bytes(&Reply::Error(e)),
            };
            conn.machine.fill(c.done.slot, bytes);
            shared.stats.latency.record(c.started.elapsed());
        }
        Some(i) => {
            let json = match c.result {
                Ok(result) => protocol::stamp_rid(result.to_value(false), c.echo).to_string(),
                Err(e) => e.to_value().to_string(),
            };
            if conn.machine.fill_batch_item(c.done.slot, i as usize, json) {
                shared.stats.latency.record(c.started.elapsed());
            }
        }
    }
}

/// Renders a reply line while recording serialization time (stat, and a
/// `"serialize"` phase span under `rid`). Server-assigned rids are *not*
/// echoed, so v1 replies stay byte-identical to the pre-correlation
/// protocol.
fn render_timed(shared: &Shared, rid: u64, reply: &Reply) -> Vec<u8> {
    let start = Instant::now();
    let bytes = line_bytes(reply);
    let elapsed = start.elapsed();
    shared.stats.serialize.record(elapsed);
    shared.span(rid, "serialize", elapsed);
    bytes
}

/// Renders a reply to its full line bytes (trailing newline included).
fn line_bytes(reply: &Reply) -> Vec<u8> {
    let mut buf = Vec::new();
    reply
        .write_to(&mut buf)
        .expect("Vec<u8> writes are infallible");
    buf
}

/// Writes buffered reply bytes until the socket would block. The flush is
/// vectored: each pass gathers the write buffer *and* every completed
/// reply still queued contiguously behind the high-water pump into one
/// `writev`, so a readiness pass costs one syscall however many replies
/// are ready (the byte stream is pinned identical to the single-write
/// path by the `conn` unit suite).
fn flush_conn(conn: &mut Conn) {
    loop {
        let segs = conn.machine.writable_vectored();
        if segs.is_empty() {
            return;
        }
        let bufs: Vec<IoSlice<'_>> = segs.iter().map(|s| IoSlice::new(s)).collect();
        match conn.stream.write_vectored(&bufs) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.machine.consume_vectored(n);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// End-of-pass bookkeeping for one connection: arm or disarm read/write
/// interest, honour `close_after_flush`, and tear down dead connections.
fn finish_pass(conn: &mut Conn, idx: usize, poller: &mut Poller, freed: &mut Vec<usize>) {
    if !conn.dead
        && conn.close_after_flush
        && !conn.machine.has_pending()
        && !conn.machine.wants_write()
    {
        conn.dead = true;
    }
    if conn.dead {
        poller.deregister(conn.stream.as_raw_fd());
        if !freed.contains(&idx) {
            freed.push(idx);
        }
        // Same-pass stale-completion filter only: the durable guard is the
        // slab `gens[idx]` bump when the freed slot is recycled at the end
        // of the pass (event_loop's `freed` loop).
        conn.gen = conn.gen.wrapping_add(1);
        return;
    }
    let want_write = conn.machine.wants_write();
    // Reads stay paused until the peer drains below the cap; progress is
    // guaranteed because a non-empty backlog always has either unflushed
    // bytes (write interest armed below) or a worker completion due.
    let want_read = conn.machine.out_backlog() < READ_BACKPRESSURE;
    if (want_read, want_write) != (conn.read_armed, conn.writable_armed)
        && poller
            .modify(conn.stream.as_raw_fd(), idx as u64, want_read, want_write)
            .is_ok()
    {
        conn.read_armed = want_read;
        conn.writable_armed = want_write;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn send_line(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    #[test]
    fn start_serve_shutdown_lifecycle() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let reply = send_line(addr, r#"{"etc":[[2,6],[3,4],[8,3]],"heuristic":"min-min"}"#);
        let v = crate::json::parse(&reply).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("makespan").unwrap().as_f64(), Some(5.0));

        let stats = send_line(addr, r#"{"op":"stats"}"#);
        let v = crate::json::parse(&stats).unwrap();
        assert_eq!(
            v.get("stats").unwrap().get("submitted").unwrap().as_u64(),
            Some(1)
        );

        let bye = send_line(addr, r#"{"op":"shutdown"}"#);
        assert!(bye.contains("draining"));
        let final_stats = server.join();
        assert!(final_stats.contains("\"served\":1"), "{final_stats}");
    }

    #[test]
    fn malformed_lines_get_400_and_do_not_kill_the_connection() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"garbage\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"code\":400"), "{reply}");

        // Same connection still works.
        stream
            .write_all(b"{\"etc\":[[1,2]],\"heuristic\":\"mct\"}\n")
            .unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "{reply}");

        server.stop();
        server.join();
    }

    #[test]
    fn rid_requests_echo_and_trace_filters_to_one_request() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        let reply = send_line(
            addr,
            r#"{"etc":[[2,6],[3,4]],"heuristic":"mct","rid":"2a"}"#,
        );
        let v = crate::json::parse(&reply).unwrap();
        assert_eq!(v.get("rid").unwrap().as_str(), Some("000000000000002a"));
        // rid-less requests get a server-assigned id internally but the
        // reply stays byte-compatible with v1: no rid key.
        let bare = send_line(addr, r#"{"etc":[[9,1]],"heuristic":"mct"}"#);
        assert!(!bare.contains("\"rid\""), "{bare}");

        // The rid-filtered TRACE reconstructs the request's full phase
        // timeline in serving order, and only its own events.
        let trace = send_line(addr, r#"{"op":"trace","rid":"2a"}"#);
        let tv = crate::json::parse(&trace).unwrap();
        assert_eq!(tv.get("rid").unwrap().as_str(), Some("000000000000002a"));
        let phases: Vec<String> = tv
            .get("spans")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.get("phase").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(
            phases,
            ["cache_probe", "queue_wait", "kernel_map", "serialize"]
        );
        let events = tv.get("events").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        for e in events {
            assert_eq!(e.get("rid").unwrap().as_str(), Some("000000000000002a"));
        }

        // A batch item carrying a rid echoes it too.
        let batch = send_line(
            addr,
            r#"{"op":"map_batch","items":[{"etc":[[5,1]],"heuristic":"mct","rid":"2b"}]}"#,
        );
        let bv = crate::json::parse(&batch).unwrap();
        let item = &bv.get("items").unwrap().as_array().unwrap()[0];
        assert_eq!(item.get("rid").unwrap().as_str(), Some("000000000000002b"));

        server.stop();
        server.join();
    }

    #[test]
    fn stop_unblocks_join_without_clients() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        server.stop();
        let stats = server.join();
        assert!(stats.contains("\"submitted\":0"), "{stats}");
    }

    /// Regression (review): a worker completion still in flight for a
    /// disconnected client must never be delivered into the connection
    /// that reuses its slab slot. Client A enqueues a slow uncached job
    /// and vanishes; client B reuses slot 0 (fresh slot ids from 0) while
    /// A's job is still executing; only the slab generation bump keeps
    /// A's stale completion out of B's reply slot.
    #[test]
    fn freed_slot_reuse_does_not_deliver_stale_completion() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        for round in 0..3u32 {
            // A big all-ones ETC keeps the single worker busy for a while;
            // one round-varied entry defeats the digest cache.
            let row = ["1"; 64].join(",");
            let mut etc: Vec<String> = (0..800).map(|_| format!("[{row}]")).collect();
            etc[0] = format!("[{},{}]", round + 2, ["1"; 63].join(","));
            let slow = format!(
                "{{\"etc\":[{}],\"heuristic\":\"min-min\"}}\n",
                etc.join(",")
            );
            let mut a = TcpStream::connect(addr).unwrap();
            a.write_all(slow.as_bytes()).unwrap();
            drop(a); // EOF right behind the request: the slot frees mid-flight
            std::thread::sleep(Duration::from_millis(20));

            // B reuses the freed slot; its own uncached job queues behind
            // A's, leaving B's slot 0 pending exactly when A's stale
            // completion (conn 0 / gen 0 / slot 0) comes back.
            let reply = send_line(
                addr,
                &format!("{{\"etc\":[[{},1]],\"heuristic\":\"mct\"}}", round + 5),
            );
            let v = crate::json::parse(&reply).unwrap();
            assert_eq!(
                v.get("makespan").and_then(crate::json::Value::as_f64),
                Some(1.0),
                "round {round}: got a stale reply: {reply}"
            );
        }

        server.stop();
        server.join();
    }

    /// Regression (review): a peer that pipelines requests faster than it
    /// reads replies gets paused (read-side backpressure), then everything
    /// still drains to completion once it starts reading.
    #[test]
    fn backpressured_pipeline_still_drains_completely() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        const N: usize = 1500;
        let mut stream = TcpStream::connect(addr).unwrap();
        // Megabytes of reply owed before the first read: far past
        // READ_BACKPRESSURE, so the loop must pause and resume this
        // connection (the requests themselves are tiny and fit in the
        // kernel buffers even while the daemon is not reading).
        let burst = "{\"op\":\"metrics\"}\n".repeat(N);
        stream.write_all(burst.as_bytes()).unwrap();

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        for i in 0..N {
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"metrics\""), "reply {i}: {line}");
        }

        server.stop();
        server.join();
    }

    /// Regression (review): with the idle sweep disabled, shutdown used to
    /// wait forever on a peer that never reads its owed replies. The hard
    /// drain deadline must unblock join().
    #[test]
    fn stalled_reader_does_not_hang_shutdown() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            idle_timeout: Duration::ZERO,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        // Owe the peer more reply bytes than loopback socket buffering
        // absorbs, and never read them: has_pending() stays true.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all("{\"op\":\"metrics\"}\n".repeat(800).as_bytes())
            .unwrap();
        std::thread::sleep(Duration::from_millis(300));

        server.stop();
        let start = Instant::now();
        server.join();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "join took {:?}",
            start.elapsed()
        );
        drop(stream); // kept open until after join: the peer really stalled
    }

    #[test]
    fn pipelined_requests_on_one_connection_answer_in_order() {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();

        // Three requests written back-to-back before any reply is read.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"{\"etc\":[[2,6],[3,4]],\"heuristic\":\"mct\"}\n{\"op\":\"stats\"}\n{\"etc\":[[9,1]],\"heuristic\":\"mct\"}\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line);
        }
        assert!(lines[0].contains("\"makespan\""), "{}", lines[0]);
        assert!(lines[1].contains("\"stats\""), "{}", lines[1]);
        assert!(lines[2].contains("\"makespan\""), "{}", lines[2]);

        server.stop();
        server.join();
    }
}
