//! Readiness notification over raw OS syscalls: epoll on Linux, poll(2)
//! everywhere (and on Linux when forced, so both backends are testable on
//! one box).
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate
//! root is `#![deny(unsafe_code)]`; everything here is a thin, audited FFI
//! shim). No external crate is involved: the `extern "C"` declarations
//! bind the libc symbols the platform already links.
//!
//! The surface is deliberately tiny — register/modify/deregister a file
//! descriptor under a caller-chosen `u64` token, then [`Poller::wait`] for
//! readiness [`Event`]s. All registrations are level-triggered and start
//! with read interest; [`Poller::modify`] toggles both directions, which
//! is how the event loop arms `EPOLLOUT` only while a connection has
//! unflushed reply bytes and drops `EPOLLIN` while a backpressured peer
//! owes it a drain. Error/hangup conditions are always reported regardless
//! of the armed interest set.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or a peer hangup, which reads as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition; the owner should read to EOF / close.
    pub hangup: bool,
}

mod ffi {
    use std::os::raw::{c_int, c_short, c_ulong};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    /// Mirror of `struct epoll_event`. The kernel ABI packs it on x86-64.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// Mirror of `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Upper bound on events drained per [`Poller::wait`] call (epoll backend).
const MAX_EVENTS: usize = 1024;

enum Backend {
    /// Linux epoll instance; the `i32` is the epoll fd, closed on drop.
    #[cfg(target_os = "linux")]
    Epoll(i32, Vec<ffi::EpollEvent>),
    /// Portable poll(2): the registration table — `(fd, token, readable,
    /// writable)` — is kept in userspace and rebuilt into `pollfd`s on
    /// every wait.
    Poll(Vec<(RawFd, u64, bool, bool)>),
}

/// A level-triggered readiness selector over raw fds.
pub(crate) struct Poller {
    backend: Backend,
}

impl Poller {
    /// Opens the platform's best backend: epoll on Linux (unless
    /// `force_poll`, used by tests to exercise the portable path), poll(2)
    /// elsewhere.
    pub fn new(force_poll: bool) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        if !force_poll {
            // SAFETY: plain syscall with no pointer arguments.
            let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            return Ok(Poller {
                backend: Backend::Epoll(
                    epfd,
                    vec![ffi::EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
                ),
            });
        }
        let _ = force_poll;
        Ok(Poller {
            backend: Backend::Poll(Vec::new()),
        })
    }

    /// True when running on the epoll backend (surfaced in logs/tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_epoll(&self) -> bool {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(..) => true,
            Backend::Poll(_) => false,
        }
    }

    /// Starts watching `fd` under `token`; read interest on, write
    /// interest iff `writable`.
    pub fn register(&mut self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epfd, _) => {
                epoll_ctl(*epfd, ffi::EPOLL_CTL_ADD, fd, token, true, writable)
            }
            Backend::Poll(table) => {
                table.push((fd, token, true, writable));
                Ok(())
            }
        }
    }

    /// Updates the read/write interest (and token) of an already
    /// registered fd. Error/hangup reporting stays on even with both
    /// directions disarmed.
    pub fn modify(
        &mut self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epfd, _) => {
                epoll_ctl(*epfd, ffi::EPOLL_CTL_MOD, fd, token, readable, writable)
            }
            Backend::Poll(table) => {
                for entry in table.iter_mut() {
                    if entry.0 == fd {
                        entry.1 = token;
                        entry.2 = readable;
                        entry.3 = writable;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }
    }

    /// Stops watching `fd`. Errors are swallowed: deregistering a fd that
    /// the kernel already dropped (peer reset) must not poison shutdown.
    pub fn deregister(&mut self, fd: RawFd) {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epfd, _) => {
                let _ = epoll_ctl(*epfd, ffi::EPOLL_CTL_DEL, fd, 0, false, false);
            }
            Backend::Poll(table) => table.retain(|&(f, ..)| f != fd),
        }
    }

    /// Blocks until at least one fd is ready or `timeout` elapses, then
    /// appends the ready set to `out` (which is cleared first). Returns the
    /// number of events. `EINTR` retries internally.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<usize> {
        out.clear();
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(epfd, buf) => loop {
                // SAFETY: `buf` outlives the call and `maxevents` matches
                // its length.
                let n = unsafe {
                    ffi::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for ev in buf.iter().take(n as usize) {
                    let flags = ev.events;
                    out.push(Event {
                        token: ev.data,
                        readable: flags & (ffi::EPOLLIN | ffi::EPOLLHUP) != 0,
                        writable: flags & ffi::EPOLLOUT != 0,
                        hangup: flags & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
                    });
                }
                return Ok(out.len());
            },
            Backend::Poll(table) => loop {
                let mut fds: Vec<ffi::PollFd> = table
                    .iter()
                    .map(|&(fd, _, readable, writable)| ffi::PollFd {
                        fd,
                        events: (if readable { ffi::POLLIN } else { 0 })
                            | (if writable { ffi::POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                // SAFETY: `fds` outlives the call and `nfds` matches its
                // length.
                let n = unsafe {
                    ffi::poll(
                        fds.as_mut_ptr(),
                        fds.len() as std::os::raw::c_ulong,
                        timeout_ms,
                    )
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for (slot, &(_, token, ..)) in fds.iter().zip(table.iter()) {
                    let r = slot.revents;
                    if r == 0 {
                        continue;
                    }
                    out.push(Event {
                        token,
                        readable: r & (ffi::POLLIN | ffi::POLLHUP) != 0,
                        writable: r & ffi::POLLOUT != 0,
                        hangup: r & (ffi::POLLERR | ffi::POLLHUP | ffi::POLLNVAL) != 0,
                    });
                }
                return Ok(out.len());
            },
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll(epfd, _) = &self.backend {
            // SAFETY: closing an fd this struct exclusively owns.
            unsafe { ffi::close(*epfd) };
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_ctl(
    epfd: i32,
    op: i32,
    fd: RawFd,
    token: u64,
    readable: bool,
    writable: bool,
) -> io::Result<()> {
    let mut ev = ffi::EpollEvent {
        events: (if readable { ffi::EPOLLIN } else { 0 })
            | (if writable { ffi::EPOLLOUT } else { 0 }),
        data: token,
    };
    // SAFETY: `ev` is a valid epoll_event for the duration of the call
    // (and ignored entirely for EPOLL_CTL_DEL).
    let rc = unsafe { ffi::epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    /// Both backends see the same readable/writable transitions on a real
    /// loopback socket pair.
    fn exercise(force_poll: bool) {
        let mut poller = Poller::new(force_poll).unwrap();
        assert_eq!(poller.is_epoll(), cfg!(target_os = "linux") && !force_poll);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        poller.register(server.as_raw_fd(), 7, false).unwrap();
        let mut events = Vec::new();

        // Nothing to read yet: the wait times out empty.
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        // A write from the peer flips the fd readable.
        client.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{events:?}"
        );

        // Write interest reports writable on an idle socket.
        poller.modify(server.as_raw_fd(), 7, true, true).unwrap();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.writable),
            "{events:?}"
        );

        // Disarming read interest silences readable reports even with
        // unread bytes pending (the backpressure pause)...
        poller.modify(server.as_raw_fd(), 7, false, false).unwrap();
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(
            events
                .iter()
                .all(|e| e.token != 7 || !(e.readable || e.writable)),
            "{events:?}"
        );
        // ...and re-arming surfaces the still-buffered byte again
        // (level-triggered).
        poller.modify(server.as_raw_fd(), 7, true, false).unwrap();
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{events:?}"
        );

        // Peer hangup surfaces as readable (EOF) and/or hangup.
        drop(client);
        poller
            .wait(&mut events, Duration::from_millis(1000))
            .unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.token == 7 && (e.readable || e.hangup)),
            "{events:?}"
        );

        poller.deregister(server.as_raw_fd());
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn epoll_backend_tracks_socket_readiness() {
        exercise(false);
    }

    #[test]
    fn poll_backend_tracks_socket_readiness() {
        exercise(true);
    }
}
