//! Sharded LRU cache keyed on instance digests.
//!
//! Repeated mapping requests are the daemon's motivating workload (the
//! paper's production scenario re-maps as new work appears, and real ETC
//! matrices recur), so identical instances should cost one computation.
//! The cache maps a 64-bit [`hcs_core::InstanceDigest`] to the shared
//! [`Arc`]'d result. It is sharded by the digest's low bits so concurrent
//! connection threads and workers rarely contend on the same lock, and each
//! shard evicts least-recently-used entries past its capacity.
//!
//! Eviction scans the shard for the oldest stamp (`O(shard size)`), which
//! is deliberate: shards are small (capacity / shards entries), the scan is
//! cache-friendly, and it avoids the intrusive-list bookkeeping a classic
//! LRU needs — simplicity the std-only constraint rewards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Shard<V> {
    entries: HashMap<u64, (u64, Arc<V>)>,
}

/// The cache; see the [module docs](self).
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
}

impl<V> ShardedCache<V> {
    /// A cache holding at most `capacity` entries across `shards` shards
    /// (both clamped to ≥ 1; shards is rounded up to a power of two so the
    /// digest's low bits select a shard without division).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                    })
                })
                .collect(),
            per_shard_capacity,
            tick: AtomicU64::new(0),
        }
    }

    fn shard(&self, digest: u64) -> &Mutex<Shard<V>> {
        &self.shards[(digest as usize) & (self.shards.len() - 1)]
    }

    /// Looks `digest` up, refreshing its recency on a hit.
    pub fn get(&self, digest: u64) -> Option<Arc<V>> {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(digest).lock().expect("cache mutex poisoned");
        let (when, value) = shard.entries.get_mut(&digest)?;
        *when = stamp;
        Some(Arc::clone(value))
    }

    /// Inserts (or refreshes) `digest`, evicting the shard's LRU entry if
    /// the shard is at capacity.
    pub fn insert(&self, digest: u64, value: Arc<V>) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(digest).lock().expect("cache mutex poisoned");
        if shard.entries.len() >= self.per_shard_capacity && !shard.entries.contains_key(&digest) {
            if let Some(&oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, (when, _))| *when)
                .map(|(k, _)| k)
            {
                shard.entries.remove(&oldest);
            }
        }
        shard.entries.insert(digest, (stamp, value));
    }

    /// Total number of cached entries (sums shard sizes; racy under load,
    /// exact when quiescent).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache mutex poisoned").entries.len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_returns_same_arc() {
        let cache = ShardedCache::new(8, 2);
        assert!(cache.get(42).is_none());
        let v = Arc::new("answer");
        cache.insert(42, Arc::clone(&v));
        let hit = cache.get(42).unwrap();
        assert!(Arc::ptr_eq(&hit, &v));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_drops_least_recently_used() {
        // Single shard, capacity 2, keys chosen in the same shard trivially.
        let cache = ShardedCache::new(2, 1);
        cache.insert(1, Arc::new(1));
        cache.insert(2, Arc::new(2));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(1).is_some());
        cache.insert(3, Arc::new(3));
        assert!(cache.get(1).is_some(), "recently used survives");
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ShardedCache::new(2, 1);
        cache.insert(1, Arc::new(1));
        cache.insert(2, Arc::new(2));
        cache.insert(2, Arc::new(22)); // refresh, not a new entry
        assert_eq!(cache.len(), 2);
        assert_eq!(*cache.get(2).unwrap(), 22);
        assert!(cache.get(1).is_some());
    }

    #[test]
    fn shards_partition_the_key_space() {
        let cache = ShardedCache::new(64, 4);
        for k in 0..64u64 {
            cache.insert(k, Arc::new(k));
        }
        assert_eq!(cache.len(), 64);
        for k in 0..64u64 {
            assert_eq!(*cache.get(k).unwrap(), k);
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(ShardedCache::new(32, 4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let k = (t * 7 + i) % 48;
                    if let Some(v) = cache.get(k) {
                        assert_eq!(*v, k);
                    } else {
                        cache.insert(k, Arc::new(k));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 32 + 3); // per-shard rounding slack
    }
}
