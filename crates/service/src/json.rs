//! Minimal JSON tree, parser and writer for the wire protocol.
//!
//! The daemon's protocol is line-delimited JSON, and the daemon must build
//! with no external dependencies (DESIGN.md §7), so this module implements
//! the small JSON subset the protocol needs: objects, arrays, strings with
//! the standard escapes, finite numbers, booleans and null. Writing is
//! deterministic — insertion-ordered objects, shortest-round-trip numbers —
//! which is what makes "byte-identical reply for a cache hit" a meaningful
//! guarantee.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (the parser rejects `NaN`/`Infinity` spellings).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.trunc() == *n && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Removes a key from an object (no-op otherwise); used by tests that
    /// compare responses modulo a field.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        match self {
            Value::Object(entries) => {
                let i = entries.iter().position(|(k, _)| k == key)?;
                Some(entries.remove(i).1)
            }
            _ => None,
        }
    }
}

/// Builder for insertion-ordered objects.
#[derive(Clone, Debug, Default)]
pub struct ObjectBuilder {
    entries: Vec<(String, Value)>,
}

impl ObjectBuilder {
    /// An empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field.
    pub fn field(mut self, key: &str, value: Value) -> Self {
        self.entries.push((key.to_string(), value));
        self
    }

    /// Finishes into a [`Value::Object`].
    pub fn build(self) -> Value {
        Value::Object(self.entries)
    }
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// Human-readable cause.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid surrogate pair"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| ParseError {
            at: start,
            what: "invalid number",
        })?;
        if !n.is_finite() {
            return Err(ParseError {
                at: start,
                what: "non-finite number",
            });
        }
        Ok(Value::Number(n))
    }
}

impl fmt::Display for Value {
    /// Compact, deterministic rendering (no whitespace, insertion order).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.trunc() == *n && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":true}],"c":null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].get("b").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn round_trips_through_display() {
        let cases = [
            r#"{"op":"map","etc":[[2,4],[3,1]],"heuristic":"min-min"}"#,
            r#"[1,2.5,"x\n\"y\"",true,null,{}]"#,
            r#"{"empty":[],"nested":{"k":-0.125}}"#,
        ];
        for text in cases {
            let v = parse(text).unwrap();
            let rendered = v.to_string();
            assert_eq!(parse(&rendered).unwrap(), v, "{text}");
            // Rendering is a fixpoint: deterministic byte output.
            assert_eq!(parse(&rendered).unwrap().to_string(), rendered);
        }
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\u0041\u00e9\ud83d\ude00\t""#).unwrap();
        assert_eq!(v.as_str(), Some("aAé😀\t"));
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"unterminated",
            "01x",
            "nul",
            "1 2",
            "{\"a\":1,}",
            "\"\\ud800\"",
            "Infinity",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = parse(r#"{"n":3,"s":"x","neg":-1,"frac":1.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
        assert_eq!(v.get("frac").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("x"), None);
    }

    #[test]
    fn object_builder_preserves_order() {
        let v = ObjectBuilder::new()
            .field("z", Value::Number(1.0))
            .field("a", Value::Bool(false))
            .build();
        assert_eq!(v.to_string(), r#"{"z":1,"a":false}"#);
    }

    #[test]
    fn remove_strips_a_field() {
        let mut v = parse(r#"{"cached":true,"x":1}"#).unwrap();
        assert_eq!(v.remove("cached"), Some(Value::Bool(true)));
        assert_eq!(v.to_string(), r#"{"x":1}"#);
    }
}
