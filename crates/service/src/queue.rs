//! A bounded MPMC queue with explicit backpressure and drain-on-close.
//!
//! Producers (connection threads) use [`BoundedQueue::try_push`], which
//! *never blocks*: a full queue is an immediate [`PushError::Full`], which
//! the server turns into a `503`-style rejection — load the daemon cannot
//! absorb is shed at the door instead of growing an unbounded backlog.
//! Consumers (workers) use [`BoundedQueue::pop`], which blocks while the
//! queue is open and empty. Closing the queue rejects further pushes but
//! lets consumers drain everything already accepted — exactly the graceful
//! `SHUTDOWN` semantics.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed load.
    Full,
    /// The queue is closed (daemon shutting down).
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue; see the [module docs](self).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue accepting at most `capacity` (≥ 1) pending items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking, or reports why it cannot.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is open and empty. Returns `None`
    /// once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Closes the queue: pushes fail from now on, pops drain what remains.
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Current number of pending items.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue mutex poisoned").items.len()
    }

    /// `true` when no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(3);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        // Popping one frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_rejects_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays None
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        // Give the consumer time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::<usize>::new(8));
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                let mut accepted = 0usize;
                for i in 0..100 {
                    loop {
                        match q.try_push(p * 100 + i) {
                            Ok(()) => {
                                accepted += 1;
                                break;
                            }
                            Err(PushError::Full) => std::thread::yield_now(),
                            Err(PushError::Closed) => unreachable!(),
                        }
                    }
                }
                accepted
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = 0usize;
                while q.pop().is_some() {
                    got += 1;
                }
                got
            }));
        }
        let pushed: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
        q.close();
        let popped: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(pushed, 400);
        assert_eq!(popped, 400);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full));
    }
}
