//! The per-connection protocol state machine: zero-copy line framing on
//! the read side, ordered reply slots in the middle, and a bounded,
//! incrementally pumped write buffer on the way out.
//!
//! [`ConnMachine`] is deliberately free of sockets, clocks, and threads —
//! the event loop in [`server`](crate::server) owns the `TcpStream` and
//! feeds bytes in ([`ConnMachine::read_space`]/[`ConnMachine::commit`]) and
//! out ([`ConnMachine::writable`]/[`ConnMachine::consume`]); the unit suite
//! drives exactly the same API with in-memory byte chunks, which is what
//! makes request framing testable under arbitrary read boundaries and
//! partial writes.
//!
//! # Framing rules
//!
//! * A request is one `\n`-terminated line, parsed **in place** from the
//!   connection's read buffer — no per-request `String` is allocated for
//!   the line itself ([`Frame::Line`] is a byte range into the buffer).
//! * A line longer than `max_line` bytes yields exactly one
//!   [`Frame::Oversized`]; the framer then discards input until the next
//!   `\n` and resynchronizes, so the connection survives with a typed
//!   error reply instead of unbounded buffering (the `read_line` hazard
//!   the old thread-per-connection server had).
//! * Replies leave in request order, whatever order workers complete in:
//!   every request reserves a *slot* up front
//!   ([`ConnMachine::open_slot`]/[`ConnMachine::open_batch`]) and the pump
//!   only moves the head slot's bytes into the write buffer.
//! * Batch replies stream: the `{"ok":true,"v":1,"items":[` header, each
//!   item, and the `]}` footer are emitted as their turn comes, so a
//!   10k-item batch never materializes as one giant line in memory. The
//!   pump stops feeding the write buffer past a high-water mark and
//!   resumes as the socket drains.

use std::collections::VecDeque;

/// Read chunk granularity: `read_space` always offers at least this much.
const READ_CHUNK: usize = 4096;

/// Soft cap on buffered-but-unsent reply bytes. The pump stops emitting
/// completed slots past this backlog and resumes as [`ConnMachine::consume`]
/// drains it; a single reply larger than the cap is still emitted whole.
const OUT_HIGH_WATER: usize = 64 * 1024;

/// One framed unit from the read buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line, as a byte range into the read buffer (newline
    /// excluded). Resolve it with [`ConnMachine::line`] **before** the next
    /// [`ConnMachine::read_space`]/[`ConnMachine::commit`] call — those may
    /// compact the buffer and invalidate the range.
    Line(std::ops::Range<usize>),
    /// A line exceeded the configured maximum length. Emitted once per
    /// offending line; the remainder is discarded up to the next `\n`.
    Oversized,
}

/// Identifies a reserved reply slot on one connection.
pub type SlotId = u64;

enum SlotState {
    /// Awaiting a worker completion.
    Pending,
    /// A fully rendered reply line (trailing `\n` included).
    Ready(Vec<u8>),
    /// A streaming `map_batch` reply.
    Batch {
        /// Item payloads in wire order; `None` until filled.
        items: Vec<Option<String>>,
        filled: usize,
        /// Items already moved to the write buffer.
        emitted: usize,
        header_sent: bool,
    },
}

struct Slot {
    id: SlotId,
    state: SlotState,
}

/// The connection state machine. See the module docs for the contract.
pub struct ConnMachine {
    rbuf: Vec<u8>,
    rstart: usize,
    rfilled: usize,
    max_line: usize,
    discarding: bool,
    read_hwm: usize,

    slots: VecDeque<Slot>,
    next_id: SlotId,
    /// Bytes held in completed-but-not-yet-pumped slots (`Ready` lines and
    /// filled batch items awaiting their wire-order turn).
    buffered: usize,

    out: Vec<u8>,
    opos: usize,
}

impl ConnMachine {
    /// A fresh machine enforcing `max_line` bytes per request line.
    pub fn new(max_line: usize) -> ConnMachine {
        ConnMachine {
            rbuf: Vec::new(),
            rstart: 0,
            rfilled: 0,
            max_line,
            discarding: false,
            read_hwm: 0,
            slots: VecDeque::new(),
            next_id: 0,
            buffered: 0,
            out: Vec::new(),
            opos: 0,
        }
    }

    // ------------------------------------------------------------------
    // Read side
    // ------------------------------------------------------------------

    /// Spare buffer space to read socket bytes into (at least
    /// [`READ_CHUNK`] bytes). Compacts consumed bytes first, so any
    /// outstanding [`Frame::Line`] range is invalidated.
    pub fn read_space(&mut self) -> &mut [u8] {
        if self.rstart > 0 {
            self.rbuf.copy_within(self.rstart..self.rfilled, 0);
            self.rfilled -= self.rstart;
            self.rstart = 0;
        }
        if self.rbuf.len() < self.rfilled + READ_CHUNK {
            self.rbuf.resize(self.rfilled + READ_CHUNK, 0);
        }
        &mut self.rbuf[self.rfilled..]
    }

    /// Records `n` bytes just read into [`ConnMachine::read_space`].
    pub fn commit(&mut self, n: usize) {
        self.rfilled += n;
        debug_assert!(self.rfilled <= self.rbuf.len());
        self.read_hwm = self.read_hwm.max(self.rfilled - self.rstart);
    }

    /// Extracts the next complete frame, if any. Call in a loop after each
    /// [`ConnMachine::commit`].
    pub fn next_frame(&mut self) -> Option<Frame> {
        loop {
            let window = &self.rbuf[self.rstart..self.rfilled];
            let newline = window.iter().position(|&b| b == b'\n');
            if self.discarding {
                match newline {
                    Some(pos) => {
                        self.rstart += pos + 1;
                        self.discarding = false;
                        continue;
                    }
                    None => {
                        self.rstart = self.rfilled;
                        return None;
                    }
                }
            }
            return match newline {
                Some(pos) if pos > self.max_line => {
                    self.rstart += pos + 1;
                    Some(Frame::Oversized)
                }
                Some(pos) => {
                    let range = self.rstart..self.rstart + pos;
                    self.rstart += pos + 1;
                    Some(Frame::Line(range))
                }
                None if window.len() > self.max_line => {
                    self.rstart = self.rfilled;
                    self.discarding = true;
                    Some(Frame::Oversized)
                }
                None => None,
            };
        }
    }

    /// Resolves a [`Frame::Line`] range to its bytes.
    pub fn line(&self, range: std::ops::Range<usize>) -> &[u8] {
        &self.rbuf[range]
    }

    /// High-water mark of buffered request bytes on this connection.
    pub fn read_hwm(&self) -> usize {
        self.read_hwm
    }

    // ------------------------------------------------------------------
    // Reply slots
    // ------------------------------------------------------------------

    /// Reserves the next reply slot (replies always leave in reservation
    /// order). Fill it with [`ConnMachine::fill`].
    pub fn open_slot(&mut self) -> SlotId {
        let id = self.next_id;
        self.next_id += 1;
        self.slots.push_back(Slot {
            id,
            state: SlotState::Pending,
        });
        id
    }

    /// Reserves a streaming batch slot carrying `items` entries. An empty
    /// batch completes (and emits `[]`) immediately.
    pub fn open_batch(&mut self, items: usize) -> SlotId {
        let id = self.next_id;
        self.next_id += 1;
        self.slots.push_back(Slot {
            id,
            state: SlotState::Batch {
                items: (0..items).map(|_| None).collect(),
                filled: 0,
                emitted: 0,
                header_sent: false,
            },
        });
        self.pump();
        id
    }

    /// Completes a single-reply slot with a fully rendered line (trailing
    /// `\n` included). Unknown ids are ignored (the peer may have
    /// disconnected and the slot queue been dropped).
    pub fn fill(&mut self, id: SlotId, line: Vec<u8>) {
        debug_assert!(line.ends_with(b"\n"));
        if let Some(slot) = self.slots.iter_mut().find(|s| s.id == id) {
            debug_assert!(matches!(slot.state, SlotState::Pending));
            self.buffered += line.len();
            slot.state = SlotState::Ready(line);
        }
        self.pump();
    }

    /// Fills item `idx` of a batch slot with its rendered JSON object (no
    /// separators, no newline). Returns `true` when this was the batch's
    /// last unfilled item. Unknown slot ids and out-of-range indices are
    /// ignored, matching [`ConnMachine::fill`] — a stale completion must
    /// never panic the event loop.
    pub fn fill_batch_item(&mut self, id: SlotId, idx: usize, json: String) -> bool {
        let mut completed = false;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.id == id) {
            if let SlotState::Batch { items, filled, .. } = &mut slot.state {
                if let Some(item) = items.get_mut(idx) {
                    if item.is_none() {
                        self.buffered += json.len();
                        *item = Some(json);
                        *filled += 1;
                    }
                }
                completed = *filled == items.len();
            }
        }
        self.pump();
        completed
    }

    /// True while any slot still awaits a worker completion.
    pub fn awaiting_worker(&self) -> bool {
        self.slots.iter().any(|s| match &s.state {
            SlotState::Pending => true,
            SlotState::Ready(_) => false,
            SlotState::Batch { items, filled, .. } => *filled < items.len(),
        })
    }

    /// True while replies remain to be flushed (unfinished slots or
    /// buffered bytes).
    pub fn has_pending(&self) -> bool {
        !self.slots.is_empty() || self.opos < self.out.len()
    }

    /// Total reply bytes owed to the peer but not yet accepted by the
    /// socket: the unflushed write buffer plus every completed reply still
    /// queued behind the high-water pump. The event loop uses this for
    /// read-side backpressure — a peer that pipelines requests without
    /// draining replies stops being read once this passes the cap, so TCP
    /// flow control pushes back instead of daemon memory growing.
    pub fn out_backlog(&self) -> usize {
        (self.out.len() - self.opos) + self.buffered
    }

    // ------------------------------------------------------------------
    // Write side
    // ------------------------------------------------------------------

    /// Bytes ready to write to the socket.
    pub fn writable(&self) -> &[u8] {
        &self.out[self.opos..]
    }

    /// True when [`ConnMachine::writable`] is non-empty.
    pub fn wants_write(&self) -> bool {
        self.opos < self.out.len()
    }

    /// Records `n` bytes accepted by the socket and pumps more completed
    /// replies into the freed space.
    pub fn consume(&mut self, n: usize) {
        self.opos += n;
        debug_assert!(self.opos <= self.out.len());
        if self.opos == self.out.len() {
            self.out.clear();
            self.opos = 0;
        }
        self.pump();
    }

    /// Everything currently sendable, as contiguous segments for a
    /// vectored write: the unflushed write buffer first, then every
    /// completed [`SlotState::Ready`] reply queued contiguously at the
    /// head of the slot queue — replies the high-water pump has *not*
    /// copied into the write buffer yet. One `writev` over these segments
    /// flushes the whole reply backlog in a single syscall per readiness
    /// pass, without the copy or the memory spike of appending held-back
    /// replies to the buffer first.
    ///
    /// The byte stream is identical to what repeated
    /// [`ConnMachine::writable`]/[`ConnMachine::consume`] rounds would
    /// produce (asserted by the unit suite): segments only ever *front-run*
    /// the pump, never reorder around it.
    pub fn writable_vectored(&self) -> Vec<&[u8]> {
        let mut segs = Vec::new();
        if self.opos < self.out.len() {
            segs.push(&self.out[self.opos..]);
        }
        for slot in &self.slots {
            match &slot.state {
                SlotState::Ready(line) => segs.push(line.as_slice()),
                _ => break,
            }
        }
        segs
    }

    /// Records `n` bytes accepted by the socket against the segments of
    /// [`ConnMachine::writable_vectored`], in order: the write buffer
    /// first, then whole or partial head replies (a short `writev` may end
    /// mid-line; the remainder stays queued and keeps its turn).
    pub fn consume_vectored(&mut self, mut n: usize) {
        let from_out = n.min(self.out.len() - self.opos);
        self.opos += from_out;
        n -= from_out;
        if self.opos == self.out.len() {
            self.out.clear();
            self.opos = 0;
        }
        while n > 0 {
            let Some(slot) = self.slots.front_mut() else {
                break;
            };
            let SlotState::Ready(line) = &mut slot.state else {
                break;
            };
            if n >= line.len() {
                n -= line.len();
                self.buffered -= line.len();
                self.slots.pop_front();
            } else {
                line.drain(..n);
                self.buffered -= n;
                n = 0;
            }
        }
        debug_assert_eq!(n, 0, "consumed more bytes than were writable");
        self.pump();
    }

    /// Moves completed head-slot bytes into the write buffer, in order,
    /// until the head slot is unfinished or the backlog passes the
    /// high-water mark.
    fn pump(&mut self) {
        loop {
            if self.out.len() - self.opos >= OUT_HIGH_WATER {
                return;
            }
            let Some(slot) = self.slots.front_mut() else {
                return;
            };
            match &mut slot.state {
                SlotState::Pending => return,
                SlotState::Ready(line) => {
                    self.buffered -= line.len();
                    self.out.append(line);
                    self.slots.pop_front();
                }
                SlotState::Batch {
                    items,
                    emitted,
                    header_sent,
                    ..
                } => {
                    if !*header_sent {
                        self.out.extend_from_slice(
                            format!(
                                "{{\"ok\":true,\"v\":{},\"items\":[",
                                crate::protocol::PROTOCOL_VERSION
                            )
                            .as_bytes(),
                        );
                        *header_sent = true;
                    }
                    let mut progressed = false;
                    while *emitted < items.len() && self.out.len() - self.opos < OUT_HIGH_WATER {
                        let Some(json) = items[*emitted].take() else {
                            break;
                        };
                        self.buffered -= json.len();
                        if *emitted > 0 {
                            self.out.push(b',');
                        }
                        self.out.extend_from_slice(json.as_bytes());
                        *emitted += 1;
                        progressed = true;
                    }
                    if *emitted == items.len() {
                        self.out.extend_from_slice(b"]}\n");
                        self.slots.pop_front();
                    } else if !progressed {
                        // Head item not filled yet, or backlog full.
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds `bytes` the way the event loop would — chunked through
    /// `read_space`, draining frames after every commit — and collects the
    /// produced frames as owned lines (`None` marks an oversized frame).
    fn feed(m: &mut ConnMachine, bytes: &[u8]) -> Vec<Option<Vec<u8>>> {
        let mut frames = Vec::new();
        let mut off = 0;
        while off < bytes.len() {
            let space = m.read_space();
            assert!(!space.is_empty(), "read_space must always offer room");
            let n = space.len().min(bytes.len() - off);
            space[..n].copy_from_slice(&bytes[off..off + n]);
            m.commit(n);
            off += n;
            while let Some(f) = m.next_frame() {
                frames.push(match f {
                    Frame::Line(r) => Some(m.line(r).to_vec()),
                    Frame::Oversized => None,
                });
            }
        }
        frames
    }

    #[test]
    fn lines_split_across_commits_reassemble() {
        let mut m = ConnMachine::new(1024);
        assert!(feed(&mut m, b"{\"op\":").is_empty());
        assert!(feed(&mut m, b"\"stats\"").is_empty());
        let frames = feed(&mut m, b"}\nnext");
        assert_eq!(frames, vec![Some(b"{\"op\":\"stats\"}".to_vec())]);
        let frames = feed(&mut m, b"\n");
        assert_eq!(frames, vec![Some(b"next".to_vec())]);
    }

    #[test]
    fn pipelined_lines_in_one_read_all_surface() {
        let mut m = ConnMachine::new(1024);
        let frames = feed(&mut m, b"a\nb\nc\n");
        assert_eq!(
            frames,
            vec![
                Some(b"a".to_vec()),
                Some(b"b".to_vec()),
                Some(b"c".to_vec())
            ]
        );
    }

    #[test]
    fn oversized_line_yields_one_frame_and_resyncs() {
        let mut m = ConnMachine::new(8);
        // 20 bytes, no newline: over the limit mid-line.
        let frames = feed(&mut m, b"AAAAAAAAAAAAAAAAAAAA");
        assert_eq!(frames, vec![None]);
        // The rest of the line is discarded silently...
        assert!(feed(&mut m, b"AAAAA").is_empty());
        // ...and the next line parses normally.
        let frames = feed(&mut m, b"AAA\nok\n");
        assert_eq!(frames, vec![Some(b"ok".to_vec())]);
    }

    #[test]
    fn oversized_line_with_newline_in_same_read_resyncs() {
        let mut m = ConnMachine::new(4);
        let frames = feed(&mut m, b"TOOLONGLINE\nok\n");
        assert_eq!(frames, vec![None, Some(b"ok".to_vec())]);
    }

    #[test]
    fn replies_leave_in_slot_order_regardless_of_fill_order() {
        let mut m = ConnMachine::new(64);
        let a = m.open_slot();
        let b = m.open_slot();
        m.fill(b, b"second\n".to_vec());
        assert!(!m.wants_write(), "slot b must wait for slot a");
        m.fill(a, b"first\n".to_vec());
        assert_eq!(m.writable(), b"first\nsecond\n");
        m.consume(13);
        assert!(!m.has_pending());
    }

    #[test]
    fn batch_streams_header_items_footer_in_index_order() {
        let mut m = ConnMachine::new(64);
        let id = m.open_batch(3);
        assert_eq!(m.writable(), b"{\"ok\":true,\"v\":1,\"items\":[");
        // Item 1 completing first cannot jump the queue.
        assert!(!m.fill_batch_item(id, 1, "{\"i\":1}".into()));
        let before = m.writable().len();
        assert_eq!(m.writable().len(), before);
        assert!(!m.fill_batch_item(id, 0, "{\"i\":0}".into()));
        assert!(m.writable().ends_with(b"[{\"i\":0},{\"i\":1}"));
        assert!(m.fill_batch_item(id, 2, "{\"i\":2}".into()));
        assert_eq!(
            m.writable(),
            b"{\"ok\":true,\"v\":1,\"items\":[{\"i\":0},{\"i\":1},{\"i\":2}]}\n".as_slice()
        );
        assert!(!m.awaiting_worker());
    }

    #[test]
    fn batch_item_out_of_range_fill_is_ignored() {
        let mut m = ConnMachine::new(64);
        let id = m.open_batch(2);
        // A stale completion routed with a bogus index must not panic or
        // complete the batch.
        assert!(!m.fill_batch_item(id, 5, "{\"i\":5}".into()));
        assert!(!m.fill_batch_item(id, 0, "{\"i\":0}".into()));
        assert!(m.fill_batch_item(id, 1, "{\"i\":1}".into()));
        assert!(m.writable().ends_with(b"[{\"i\":0},{\"i\":1}]}\n"));
    }

    #[test]
    fn out_backlog_tracks_queued_and_unflushed_reply_bytes() {
        let mut m = ConnMachine::new(64);
        assert_eq!(m.out_backlog(), 0);
        let a = m.open_slot();
        let b = m.open_slot();
        // Pending slots owe nothing until a reply is rendered.
        assert_eq!(m.out_backlog(), 0);
        // Slot b is complete but queued behind the pending head: counted.
        m.fill(b, b"second\n".to_vec());
        assert_eq!(m.out_backlog(), 7);
        // Both pump into the write buffer: still counted until consumed.
        m.fill(a, b"first\n".to_vec());
        assert_eq!(m.out_backlog(), 13);
        m.consume(6);
        assert_eq!(m.out_backlog(), 7);
        m.consume(7);
        assert_eq!(m.out_backlog(), 0);
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let mut m = ConnMachine::new(64);
        m.open_batch(0);
        assert_eq!(
            m.writable(),
            b"{\"ok\":true,\"v\":1,\"items\":[]}\n".as_slice()
        );
    }

    #[test]
    fn backlog_high_water_pauses_the_pump_until_drained() {
        let mut m = ConnMachine::new(64);
        let big = "x".repeat(OUT_HIGH_WATER);
        let a = m.open_slot();
        let b = m.open_slot();
        m.fill(a, format!("{big}\n").into_bytes());
        m.fill(b, b"tail\n".to_vec());
        // Slot b is complete but held back by the backlog.
        assert_eq!(m.writable().len(), OUT_HIGH_WATER + 1);
        m.consume(OUT_HIGH_WATER + 1);
        assert_eq!(m.writable(), b"tail\n");
    }

    /// The vectored and single-buffer flush paths must emit the identical
    /// byte stream for the same slot history — including a reply big
    /// enough to trip the high-water pump (so `writable_vectored` fronts
    /// held-back `Ready` replies) and a batch slot bounding the segment
    /// run. Both sides are driven with adversarial short writes.
    #[test]
    fn vectored_flush_is_byte_identical_to_the_single_write_path() {
        let build = || {
            let mut m = ConnMachine::new(64);
            let a = m.open_slot();
            let b = m.open_slot();
            let c = m.open_slot();
            let d = m.open_batch(2);
            let e = m.open_slot();
            let big = "x".repeat(OUT_HIGH_WATER);
            m.fill(a, format!("{big}\n").into_bytes());
            m.fill(b, b"beta\n".to_vec());
            m.fill(c, b"gamma\n".to_vec());
            m.fill_batch_item(d, 1, "{\"i\":1}".into());
            m.fill_batch_item(d, 0, "{\"i\":0}".into());
            m.fill(e, b"omega\n".to_vec());
            m
        };
        let mut single = Vec::new();
        let mut m = build();
        while m.wants_write() {
            let chunk = m.writable().len().min(1000);
            single.extend_from_slice(&m.writable()[..chunk]);
            m.consume(chunk);
        }
        assert!(!m.has_pending());
        let mut vectored = Vec::new();
        let mut m = build();
        loop {
            let segs = m.writable_vectored();
            if segs.is_empty() {
                break;
            }
            let flat: Vec<u8> = segs.concat();
            let n = flat.len().min(777);
            vectored.extend_from_slice(&flat[..n]);
            m.consume_vectored(n);
        }
        assert!(!m.has_pending());
        assert_eq!(single.len(), vectored.len());
        assert!(single == vectored, "vectored flush reordered or lost bytes");
    }

    #[test]
    fn vectored_consume_can_end_mid_reply_without_reordering() {
        let mut m = ConnMachine::new(64);
        let big = "x".repeat(OUT_HIGH_WATER);
        let a = m.open_slot();
        let b = m.open_slot();
        m.fill(a, format!("{big}\n").into_bytes());
        m.fill(b, b"tail42\n".to_vec());
        // The held-back tail reply rides the same writev as the buffer.
        let segs = m.writable_vectored();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1], b"tail42\n");
        // A short writev ends four bytes into the tail reply...
        m.consume_vectored(OUT_HIGH_WATER + 1 + 4);
        // ...and the remainder keeps its turn, byte-exact.
        let rest: Vec<u8> = m.writable_vectored().concat();
        assert_eq!(rest, b"42\n");
        m.consume_vectored(3);
        assert!(!m.has_pending());
        assert_eq!(m.out_backlog(), 0);
    }

    #[test]
    fn read_high_water_tracks_buffered_bytes() {
        let mut m = ConnMachine::new(1 << 20);
        feed(&mut m, &vec![b'x'; 10_000]);
        assert!(m.read_hwm() >= 10_000, "{}", m.read_hwm());
        feed(&mut m, b"\n");
        assert!(m.read_hwm() >= 10_000);
    }
}
