//! `hcs-service`: a multi-threaded mapping daemon for the HC suite.
//!
//! The daemon accepts mapping requests over TCP as line-delimited JSON and
//! answers each line with one JSON reply line. It exists to serve the
//! paper's operational setting — a resource-management system that re-maps
//! a heterogeneous suite whenever new work arrives — without paying process
//! startup, matrix parsing, or allocator churn per request:
//!
//! * a **worker pool** where each thread owns one reusable
//!   [`hcs_core::MapWorkspace`] (the PR 1 zero-allocation kernel),
//! * a **bounded queue** ([`queue::BoundedQueue`]) with explicit
//!   backpressure — overload is shed with a `503`-style reply, never an
//!   unbounded backlog,
//! * a **sharded LRU digest cache** ([`cache::ShardedCache`]) keyed on
//!   [`hcs_core::InstanceDigest`] so repeated instances cost one
//!   computation, and
//! * **built-in observability** ([`stats::ServiceStats`]): counters and
//!   fixed-bucket latency percentiles, backed by the shared `hcs-obs`
//!   metrics registry, exposed as JSON over `STATS`, as Prometheus text
//!   over `METRICS`, and as recent trace events over `TRACE`.
//!
//! The crate is deliberately **std-only** (no async runtime, no serde): it
//! must build in sealed/offline environments, and a line-per-request
//! protocol at mapping-problem granularity gains nothing from an async
//! reactor — a thread per connection plus a fixed worker pool is simpler to
//! reason about and easy to drain correctly on `SHUTDOWN`.
//!
//! # Protocol
//!
//! One JSON object per line. `op` selects the action (default `"map"`):
//!
//! ```text
//! {"etc":[[2,6],[3,4],[8,3]],"heuristic":"min-min"}
//! {"op":"map","etc":[[1,2]],"ready":[0,0],"heuristic":"mct","iterative":true}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"trace"}
//! {"op":"shutdown"}
//! ```
//!
//! Replies are single JSON lines: `{"ok":true,...}` on success or
//! `{"ok":false,"code":400|404|500|503,"error":"..."}` on failure. See
//! [`protocol`] for the full field set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

pub use protocol::{MapRequest, MapResult, ProtocolError, Request};
pub use server::{ServeConfig, Server};
pub use stats::{LatencyHistogram, ServiceStats};
