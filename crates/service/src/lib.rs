//! `hcs-service`: a multi-threaded mapping daemon for the HC suite.
//!
//! The daemon accepts mapping requests over TCP as line-delimited JSON and
//! answers each line with one JSON reply line. It exists to serve the
//! paper's operational setting — a resource-management system that re-maps
//! a heterogeneous suite whenever new work arrives — without paying process
//! startup, matrix parsing, or allocator churn per request:
//!
//! * a **nonblocking event loop** ([`server`]) — raw epoll on Linux with a
//!   portable poll(2) fallback ([`sys`]), one thread owning every socket —
//!   driving a per-connection state machine ([`conn::ConnMachine`]) that
//!   frames request lines in place (no per-request `String`) and streams
//!   large batch replies in chunks,
//! * a **worker pool** where each thread owns one reusable
//!   [`hcs_core::MapWorkspace`] (the PR 1 zero-allocation kernel), handing
//!   results back to the loop over a completion channel,
//! * a **bounded queue** ([`queue::BoundedQueue`]) with explicit
//!   backpressure — overload is shed with a `503`-style reply, never an
//!   unbounded backlog,
//! * a **sharded LRU digest cache** ([`cache::ShardedCache`]) keyed on
//!   [`hcs_core::InstanceDigest`] so repeated instances cost one
//!   computation, and
//! * **built-in observability** ([`stats::ServiceStats`]): counters and
//!   fixed-bucket latency percentiles, backed by the shared `hcs-obs`
//!   metrics registry, exposed as JSON over `STATS`, as Prometheus text
//!   over `METRICS`, and as recent trace events over `TRACE`.
//!
//! The crate is deliberately **std-only** (no async runtime, no serde, no
//! libc crate — the few epoll/poll syscalls are declared directly in
//! [`sys`]): it must build in sealed/offline environments. The readiness
//! loop replaced the original thread-per-connection front end so one
//! daemon can hold tens of thousands of mostly-idle connections; the
//! wire protocol is unchanged.
//!
//! # Protocol
//!
//! One JSON object per line. `op` selects the action (default `"map"`);
//! an optional `"v"` field carries the protocol version (missing = v1,
//! unknown versions get a typed rejection):
//!
//! ```text
//! {"etc":[[2,6],[3,4],[8,3]],"heuristic":"min-min"}
//! {"op":"map","v":1,"etc":[[1,2]],"ready":[0,0],"heuristic":"mct","iterative":true}
//! {"op":"map_batch","items":[{"etc":[[1,2]],"heuristic":"mct"},{"etc":[[3]],"heuristic":"olb"}]}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"trace"}
//! {"op":"shutdown"}
//! ```
//!
//! Replies are single JSON lines: `{"ok":true,"v":1,...}` on success or
//! `{"ok":false,"v":1,"code":400|404|500|503,"error_code":"shed|parse|version|fault|internal",
//! "error":"..."}` on failure. `map_batch` fans its items across the
//! worker pool and answers with one order-preserving `items` array whose
//! entries are complete single-map reply objects — failures are reported
//! per item, so a poisoned item never fails the batch. See [`protocol`]
//! for the full field set, and [`ServeConfig::fault_rate`] for the
//! deterministic fault-injection hook used to test client retry paths.

// `deny` rather than `forbid`: the `sys` module opts back in for its
// handful of FFI declarations; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod cache;
pub mod config;
pub mod conn;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;
mod sys;

pub use config::{ConfigError, ServeConfig, ServeConfigBuilder};
pub use conn::{ConnMachine, Frame, SlotId};
pub use protocol::{
    batch_line, BatchRequest, ErrorCode, MapRequest, MapResult, ProtocolError, Reply, Request,
    MAX_BATCH_ITEMS, PROTOCOL_VERSION,
};
pub use server::Server;
pub use stats::{LatencyHistogram, ServiceStats, ShardIdentity};
