//! Socket-level framing regressions against a live daemon: the max-line
//! guard (typed 400, connection survives, resync at the next newline),
//! the slow-loris idle timeout, and chunked batch-reply streaming being
//! byte-identical to what a monolithic render would have produced.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use hcs_service::json::parse;
use hcs_service::{ServeConfig, Server};

fn start(
    configure: impl FnOnce(hcs_service::ServeConfigBuilder) -> hcs_service::ServeConfigBuilder,
) -> Server {
    let builder = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .queue_depth(64)
        .trace_capacity(0);
    let config = configure(builder).build().expect("valid config");
    Server::start(config).expect("bind ephemeral port")
}

#[test]
fn oversized_line_gets_typed_400_and_connection_resyncs() {
    // 1 KiB cap (the minimum) so the oversized line is cheap to send.
    let server = start(|b| b.max_line_bytes(1024));
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    // 4 KiB of garbage with no newline until the end: crosses the cap
    // mid-line, so the framer must discard to the next newline.
    let mut big = vec![b'x'; 4096];
    big.push(b'\n');
    stream.write_all(&big).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let v = parse(&reply).unwrap();
    assert_eq!(
        v.get("ok").unwrap().as_bool(),
        Some(false),
        "oversized line must be rejected: {reply}"
    );
    assert_eq!(v.get("code").unwrap().as_u64(), Some(400), "{reply}");
    assert_eq!(
        v.get("error_code").unwrap().as_str(),
        Some("parse"),
        "{reply}"
    );
    assert!(
        v.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("max_line_bytes"),
        "{reply}"
    );

    // The same connection still serves the next (valid) request.
    stream
        .write_all(b"{\"etc\":[[2,6],[3,4]],\"heuristic\":\"mct\"}\n")
        .unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\":true"), "{reply}");

    server.stop();
    server.join();
}

#[test]
fn oversized_line_without_newline_is_rejected_while_still_arriving() {
    // The guard must fire as soon as the cap is crossed, not wait for a
    // newline that a hostile client never sends.
    let server = start(|b| b.max_line_bytes(1024));
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&vec![b'y'; 2048]).unwrap(); // no newline
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"code\":400"), "{reply}");

    // Finish the oversized line and follow with a valid one: the framer
    // resynchronizes at the newline.
    stream.write_all(b"tail\n{\"op\":\"shutdown\"}\n").unwrap();
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("draining"), "{reply}");

    server.join();
}

#[test]
fn slow_loris_connection_is_closed_after_the_idle_timeout() {
    let server = start(|b| b.idle_timeout(Duration::from_millis(200)));
    let addr = server.local_addr();

    // A client that sends half a request and then stalls.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"{\"etc\":[[2,").unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 64];
    // The daemon must close the socket (EOF), not answer.
    match stream.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("expected EOF, got {} bytes", n),
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected EOF, got error {e}"),
    }

    // A fresh, active connection is unaffected.
    let mut live = TcpStream::connect(addr).unwrap();
    live.write_all(b"{\"etc\":[[1,2]],\"heuristic\":\"mct\"}\n")
        .unwrap();
    let mut reader = BufReader::new(live);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\":true"), "{reply}");

    server.stop();
    server.join();
}

#[test]
fn idle_timeout_spares_requests_waiting_on_a_worker() {
    // One worker busy on a sleeping request; a second request queues
    // behind it longer than the idle timeout. The sweep must not kill the
    // connection that is legitimately waiting for its reply.
    let server = start(|b| b.workers(1).idle_timeout(Duration::from_millis(150)));
    let addr = server.local_addr();

    let mut waiting = TcpStream::connect(addr).unwrap();
    waiting
        .write_all(b"{\"etc\":[[1,1]],\"heuristic\":\"mct\",\"sleep_ms\":600}\n")
        .unwrap();
    let mut reader = BufReader::new(waiting);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(
        reply.contains("\"ok\":true"),
        "request outliving the idle timeout in-queue must still be answered: {reply}"
    );

    server.stop();
    server.join();
}

#[test]
fn streamed_batch_reply_is_byte_identical_to_monolithic_rendering() {
    // Deep queue: all ~2000 items may be in flight at once (cache
    // convergence is racy), and none may be shed.
    let server = start(|b| b.queue_depth(4096));
    let addr = server.local_addr();

    // A batch big enough to cross the streaming high-water mark several
    // times over (each reply item is ~100 bytes; the daemon chunks at
    // 64 KiB of buffered output).
    let items: Vec<String> = (0..2000)
        .map(|i| {
            format!(
                "{{\"etc\":[[{},{}]],\"heuristic\":\"mct\"}}",
                1 + i % 7,
                2 + i % 5
            )
        })
        .collect();
    let line = format!("{{\"op\":\"map_batch\",\"items\":[{}]}}\n", items.join(","));

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();

    // Structure: one well-formed JSON line, every item in order and ok.
    let v = parse(reply.trim_end()).expect("streamed reply must parse as one JSON line");
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    let got = v.get("items").unwrap().as_array().unwrap();
    assert_eq!(got.len(), 2000);
    for (i, item) in got.iter().enumerate() {
        assert_eq!(
            item.get("ok").and_then(|b| b.as_bool()),
            Some(true),
            "item {i}: {item}"
        );
    }

    // Byte-identity: the streamed frame is exactly the monolithic render
    // `{"ok":true,"v":1,"items":[ <item>,<item>,... ]}`.
    let rebuilt: Vec<String> = got.iter().map(|item| item.to_string()).collect();
    let monolithic = format!("{{\"ok\":true,\"v\":1,\"items\":[{}]}}", rebuilt.join(","));
    assert_eq!(reply.trim_end(), monolithic);

    server.stop();
    server.join();
}
