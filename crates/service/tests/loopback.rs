//! End-to-end loopback tests: a real daemon on an ephemeral port, real TCP
//! clients, replies checked against direct library calls.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use hcs_core::{EtcMatrix, MapWorkspace, Scenario};
use hcs_service::json::{parse, Value};
use hcs_service::protocol::{self, MapRequest};
use hcs_service::{ServeConfig, Server};

fn start(workers: usize, queue_depth: usize) -> Server {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(workers)
        .queue_depth(queue_depth)
        .cache_capacity(256)
        .cache_shards(4)
        .trace_capacity(256)
        .build()
        .expect("valid config");
    Server::start(config).expect("bind ephemeral port")
}

/// One request/reply over a fresh connection.
fn roundtrip(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim_end().to_string()
}

fn request(seed: u64, tasks: usize, iterative: bool) -> MapRequest {
    // A deterministic pseudo-random ETC without any RNG dependency: FNV-ish
    // integer mixing, values in [1, 100].
    let rows: Vec<Vec<f64>> = (0..tasks)
        .map(|t| {
            (0..3)
                .map(|m| {
                    let mut x = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add((t * 3 + m) as u64);
                    x ^= x >> 31;
                    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    ((x >> 33) % 100 + 1) as f64
                })
                .collect()
        })
        .collect();
    MapRequest {
        scenario: Scenario::with_zero_ready(EtcMatrix::from_rows(&rows).unwrap()),
        heuristic: "Min-Min".into(),
        random_ties: None,
        iterative,
        guard: false,
        sleep_ms: 0,
        rid: None,
    }
}

/// Strips the `cached` flag so hit and miss replies can be compared
/// byte-for-byte.
fn without_cached(reply: &str) -> String {
    let mut v = parse(reply).expect("parseable reply");
    v.remove("cached");
    v.to_string()
}

#[test]
fn concurrent_replies_match_direct_library_calls() {
    let server = start(4, 64);
    let addr = server.local_addr();

    let handles: Vec<_> = (0..8u64)
        .map(|client| {
            std::thread::spawn(move || {
                for i in 0..5 {
                    let req = request(client * 16 + i, 6 + i as usize, i % 2 == 0);
                    let reply = roundtrip(addr, &req.to_line());
                    // The reference result from the plain library path, on a
                    // private workspace.
                    let mut ws = MapWorkspace::new();
                    let expected = protocol::execute(&req, &mut ws)
                        .expect("library call succeeds")
                        .to_line(false);
                    assert_eq!(
                        without_cached(&reply),
                        without_cached(&expected),
                        "client {client} request {i} diverged from library"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Accounting invariant after the storm: every submitted request was
    // served, answered from cache, or rejected.
    let stats_reply = roundtrip(addr, r#"{"op":"stats"}"#);
    let v = parse(&stats_reply).unwrap();
    let stats = v.get("stats").unwrap();
    let n = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap();
    assert_eq!(
        n("submitted"),
        n("served") + n("cache_hits") + n("rejected")
    );
    assert_eq!(n("submitted"), 40);
    assert_eq!(n("rejected"), 0, "queue of 64 never fills with 8 clients");
    assert_eq!(n("bad_requests"), 0);

    server.stop();
    server.join();
}

#[test]
fn cache_hit_is_byte_identical_and_flagged() {
    let server = start(2, 16);
    let addr = server.local_addr();
    let line = request(99, 8, true).to_line();

    let first = roundtrip(addr, &line);
    let second = roundtrip(addr, &line);

    let v1 = parse(&first).unwrap();
    let v2 = parse(&second).unwrap();
    assert_eq!(v1.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(v2.get("cached").and_then(Value::as_bool), Some(true));
    // Everything but the cached flag is byte-identical — the cache returns
    // the same Arc'd result, rendered by the same deterministic writer.
    assert_eq!(without_cached(&first), without_cached(&second));

    let stats_reply = roundtrip(addr, r#"{"op":"stats"}"#);
    let stats = parse(&stats_reply).unwrap();
    assert_eq!(
        stats
            .get("stats")
            .unwrap()
            .get("cache_hits")
            .and_then(Value::as_u64),
        Some(1)
    );

    server.stop();
    server.join();
}

#[test]
fn overload_is_rejected_with_503() {
    // One worker, queue depth 1, and slow (sleep-padded) distinct requests:
    // at most 2 can be in the system (1 executing + 1 queued), so 6
    // concurrent clients must see at least one rejection.
    let server = start(1, 1);
    let addr = server.local_addr();

    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            std::thread::spawn(move || {
                // Stagger the arrivals: without this, all 6 pushes can land
                // before the worker wakes to pop the first job, leaving only
                // one success and making the `ok >= 2` assertion racy.
                std::thread::sleep(std::time::Duration::from_millis(i * 30));
                let mut req = request(1000 + i, 4, false);
                req.sleep_ms = 300;
                roundtrip(addr, &req.to_line())
            })
        })
        .collect();
    let replies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let rejected = replies
        .iter()
        .filter(|r| r.contains("\"code\":503"))
        .count();
    let ok = replies.iter().filter(|r| r.contains("\"ok\":true")).count();
    assert!(rejected >= 1, "expected load shedding, got: {replies:?}");
    assert!(ok >= 2, "in-flight + queued requests still succeed");
    assert_eq!(ok + rejected, 6);

    // The daemon's own accounting agrees with the client-observed outcome.
    let stats_reply = roundtrip(addr, r#"{"op":"stats"}"#);
    let v = parse(&stats_reply).unwrap();
    let stats = v.get("stats").unwrap();
    let n = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap();
    assert_eq!(n("rejected") as usize, rejected);
    assert_eq!(
        n("submitted"),
        n("served") + n("cache_hits") + n("rejected")
    );

    server.stop();
    server.join();
}

#[test]
fn shutdown_drains_accepted_work() {
    let server = start(1, 8);
    let addr = server.local_addr();

    // Put slow work in flight, then shut down while it is queued.
    let workers: Vec<_> = (0..3u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut req = request(2000 + i, 4, false);
                req.sleep_ms = 200;
                roundtrip(addr, &req.to_line())
            })
        })
        .collect();
    // Give the requests time to enter the queue before shutting down.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let bye = roundtrip(addr, r#"{"op":"shutdown"}"#);
    assert!(bye.contains("draining"), "{bye}");

    // Every request accepted before the shutdown still gets a real answer
    // (drain semantics), not a dropped connection.
    let mut answered = 0u64;
    let mut refused = 0u64;
    for h in workers {
        let reply = h.join().unwrap();
        if reply.contains("\"ok\":true") {
            answered += 1;
        } else if reply.contains("\"code\":503") {
            refused += 1;
        } else {
            panic!("unexpected reply during drain: {reply}");
        }
    }
    let final_stats = server.join();
    assert!(final_stats.contains("\"submitted\":3"), "{final_stats}");

    // Drained-then-served requests are binned `served` (or `cache_hits`),
    // exactly like requests served before the shutdown; requests that
    // missed the queue are binned `rejected`. The three bins therefore
    // still partition `submitted` — the invariant holds *through* the
    // shutdown, and agrees with what the clients observed.
    let stats = parse(&final_stats).unwrap();
    let stats = stats.get("stats").unwrap();
    let n = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap();
    assert_eq!(
        n("submitted"),
        n("served") + n("cache_hits") + n("rejected"),
        "invariant broken across shutdown: {final_stats}"
    );
    assert_eq!(n("served") + n("cache_hits"), answered, "{final_stats}");
    assert_eq!(n("rejected"), refused, "{final_stats}");
}

#[test]
fn metrics_verb_returns_valid_prometheus_covering_all_stats_counters() {
    let server = start(2, 16);
    let addr = server.local_addr();

    // Generate one miss and one hit so counters and latency buckets move.
    let line = request(7, 6, false).to_line();
    roundtrip(addr, &line);
    roundtrip(addr, &line);

    let reply = roundtrip(addr, r#"{"op":"metrics"}"#);
    let v = parse(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    let text = v
        .get("metrics")
        .and_then(Value::as_str)
        .expect("metrics payload is a string")
        .to_string();

    // The exposition must pass the strict validator...
    hcs_core::obs::validate_prometheus(&text).expect("valid Prometheus text");

    // ...and cover every counter the STATS reply exposes, plus the latency
    // histogram buckets.
    for name in [
        "hcs_requests_submitted_total",
        "hcs_requests_served_total",
        "hcs_cache_hits_total",
        "hcs_requests_rejected_total",
        "hcs_bad_requests_total",
        "hcs_queue_depth",
        "hcs_workers",
    ] {
        assert!(text.contains(&format!("# TYPE {name} ")), "missing {name}");
    }
    assert!(text.contains("hcs_request_latency_us_bucket{le=\"+Inf\"}"));
    assert!(text.contains("hcs_requests_submitted_total 2\n"));
    assert!(text.contains("hcs_cache_hits_total 1\n"));

    // The same cells back STATS: the two replies must agree.
    let stats_reply = roundtrip(addr, r#"{"op":"stats"}"#);
    let stats = parse(&stats_reply).unwrap();
    let submitted = stats
        .get("stats")
        .unwrap()
        .get("submitted")
        .and_then(Value::as_u64)
        .unwrap();
    assert_eq!(submitted, 2);

    server.stop();
    server.join();
}

#[test]
fn trace_verb_reports_worker_and_cache_events() {
    let server = start(1, 16);
    let addr = server.local_addr();

    let line = request(11, 6, false).to_line();
    roundtrip(addr, &line); // miss -> WorkerServe
    roundtrip(addr, &line); // hit  -> CacheHit

    let reply = roundtrip(addr, r#"{"op":"trace"}"#);
    let v = parse(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    let events = v
        .get("events")
        .and_then(Value::as_array)
        .expect("events array")
        .to_vec();
    let kinds: Vec<String> = events
        .iter()
        .map(|e| {
            e.get("event")
                .and_then(Value::as_str)
                .expect("event kind")
                .to_string()
        })
        .collect();
    assert!(
        kinds.iter().any(|k| k == "worker_serve"),
        "expected a worker_serve event, got {kinds:?}"
    );
    assert!(
        kinds.iter().any(|k| k == "cache_hit"),
        "expected a cache_hit event, got {kinds:?}"
    );
    // Events carry their ring sequence numbers in order.
    let seqs: Vec<u64> = events
        .iter()
        .map(|e| e.get("seq").and_then(Value::as_u64).expect("seq"))
        .collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted, "trace events must be sequence-ordered");

    server.stop();
    server.join();
}

#[test]
fn zero_trace_capacity_disables_tracing() {
    let config = ServeConfig::builder()
        .addr("127.0.0.1:0")
        .workers(1)
        .queue_depth(8)
        .cache_capacity(16)
        .cache_shards(2)
        .trace_capacity(0)
        .build()
        .expect("valid config");
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.local_addr();
    roundtrip(addr, &request(13, 4, false).to_line());
    let reply = roundtrip(addr, r#"{"op":"trace"}"#);
    let v = parse(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        v.get("events")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(0),
        "tracing disabled -> no events: {reply}"
    );
    server.stop();
    server.join();
}

#[test]
fn map_batch_answers_in_order_with_per_item_failures() {
    let server = start(4, 64);
    let addr = server.local_addr();

    // Five items, one poisoned (unknown heuristic). The batch must still
    // succeed as a line, with the failure reported in place.
    let mut items: Vec<MapRequest> = (0..5u64)
        .map(|i| request(3000 + i, 5 + i as usize, i % 2 == 0))
        .collect();
    items[2].heuristic = "nope".into();
    let reply = roundtrip(addr, &protocol::batch_line(&items));

    let v = parse(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{reply}");
    assert_eq!(v.get("v").and_then(Value::as_u64), Some(1));
    let replies = v
        .get("items")
        .and_then(Value::as_array)
        .expect("items array")
        .to_vec();
    assert_eq!(replies.len(), items.len());

    for (i, item) in replies.iter().enumerate() {
        if i == 2 {
            assert_eq!(item.get("ok").and_then(Value::as_bool), Some(false));
            assert_eq!(item.get("code").and_then(Value::as_u64), Some(404));
            assert_eq!(
                item.get("error_code").and_then(Value::as_str),
                Some("parse")
            );
        } else {
            // Each healthy item matches the direct library call, in its
            // original position.
            let mut ws = MapWorkspace::new();
            let expected = protocol::execute(&items[i], &mut ws)
                .expect("library call succeeds")
                .to_value(false);
            assert_eq!(
                without_cached(&item.to_string()),
                without_cached(&expected.to_string()),
                "batch item {i} diverged from library"
            );
        }
    }

    // Accounting: one batch line, five items, of which one was malformed
    // and four entered the submitted/served pipeline.
    let stats_reply = roundtrip(addr, r#"{"op":"stats"}"#);
    let v = parse(&stats_reply).unwrap();
    let stats = v.get("stats").unwrap();
    let n = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap();
    assert_eq!(n("batched"), 1);
    assert_eq!(n("batch_items"), 5);
    assert_eq!(n("bad_requests"), 1);
    assert_eq!(n("submitted"), 4);
    assert_eq!(
        n("submitted"),
        n("served") + n("cache_hits") + n("rejected")
    );

    server.stop();
    server.join();
}

#[test]
fn batch_items_share_the_digest_cache_with_single_requests() {
    let server = start(2, 16);
    let addr = server.local_addr();

    // Warm the cache through the single-request path...
    let req = request(4000, 6, true);
    roundtrip(addr, &req.to_line());
    // ...then hit the same instance inside a batch.
    let reply = roundtrip(addr, &protocol::batch_line(std::slice::from_ref(&req)));
    let v = parse(&reply).unwrap();
    let item = &v.get("items").and_then(Value::as_array).unwrap()[0];
    assert_eq!(item.get("cached").and_then(Value::as_bool), Some(true));

    let stats_reply = roundtrip(addr, r#"{"op":"stats"}"#);
    let stats = parse(&stats_reply).unwrap();
    let n = |k: &str| {
        stats
            .get("stats")
            .unwrap()
            .get(k)
            .and_then(Value::as_u64)
            .unwrap()
    };
    assert_eq!(n("cache_hits"), 1);

    server.stop();
    server.join();
}

#[test]
fn objectives_get_distinct_cache_entries_and_replies() {
    let server = start(2, 16);
    let addr = server.local_addr();

    // Two requests identical in every field except the objective.
    let makespan_req = request(600, 8, false);
    let mut flowtime_req = makespan_req.clone();
    flowtime_req.scenario = flowtime_req
        .scenario
        .with_objective(hcs_core::Objective::Flowtime);

    // Warm the cache with the makespan variant...
    let first = roundtrip(addr, &makespan_req.to_line());
    // ...then ask for flowtime: it must be a cache *miss* (distinct digest),
    // not a stale cross-objective hit.
    let second = roundtrip(addr, &flowtime_req.to_line());
    let v1 = parse(&first).unwrap();
    let v2 = parse(&second).unwrap();
    assert_eq!(v1.get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(
        v2.get("cached").and_then(Value::as_bool),
        Some(false),
        "flowtime request answered from the makespan cache entry: {second}"
    );
    // The replies themselves are distinct: only the flowtime reply carries
    // the objective fields.
    assert!(v1.get("objective").is_none(), "{first}");
    assert_eq!(
        v2.get("objective").and_then(Value::as_str),
        Some("flowtime"),
        "{second}"
    );
    assert!(v2.get("objective_value").and_then(Value::as_f64).is_some());

    let stats_reply = roundtrip(addr, r#"{"op":"stats"}"#);
    let stats = parse(&stats_reply).unwrap();
    let n = |k: &str| {
        stats
            .get("stats")
            .unwrap()
            .get(k)
            .and_then(Value::as_u64)
            .unwrap()
    };
    assert_eq!(
        n("cache_hits"),
        0,
        "cross-objective collision: {stats_reply}"
    );

    // Repeating each request now hits its own entry, byte-identically.
    let first_again = roundtrip(addr, &makespan_req.to_line());
    let second_again = roundtrip(addr, &flowtime_req.to_line());
    assert_eq!(without_cached(&first), without_cached(&first_again));
    assert_eq!(without_cached(&second), without_cached(&second_again));
    assert_eq!(
        parse(&second_again)
            .unwrap()
            .get("cached")
            .and_then(Value::as_bool),
        Some(true)
    );

    server.stop();
    server.join();
}

#[test]
fn unknown_objective_is_rejected_over_the_wire() {
    let server = start(1, 8);
    let addr = server.local_addr();
    let reply = roundtrip(
        addr,
        r#"{"etc":[[2,6],[3,4]],"heuristic":"min-min","objective":"banana"}"#,
    );
    let v = parse(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{reply}");
    assert_eq!(v.get("code").and_then(Value::as_u64), Some(400));
    assert_eq!(v.get("error_code").and_then(Value::as_str), Some("parse"));
    assert!(
        v.get("error")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains("objective")),
        "{reply}"
    );
    // The rejection is a typed parse error, never a silent makespan run.
    let stats_reply = roundtrip(addr, r#"{"op":"stats"}"#);
    let stats = parse(&stats_reply).unwrap();
    let stats = stats.get("stats").unwrap().clone();
    let n = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap();
    assert_eq!(n("bad_requests"), 1);
    assert_eq!(n("submitted"), 0);
    server.stop();
    server.join();
}

#[test]
fn injected_faults_are_typed_counted_and_deterministic() {
    let fault_server = |rate: f64| {
        let config = ServeConfig::builder()
            .addr("127.0.0.1:0")
            .workers(2)
            .queue_depth(32)
            .cache_capacity(16)
            .cache_shards(1)
            .trace_capacity(0)
            .fault_rate(rate)
            .fault_seed(42)
            .build()
            .expect("valid config");
        Server::start(config).expect("bind ephemeral port")
    };

    // rate = 1.0: every request faults with the typed 503.
    let server = fault_server(1.0);
    let addr = server.local_addr();
    let reply = roundtrip(addr, &request(50, 4, false).to_line());
    let v = parse(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(v.get("code").and_then(Value::as_u64), Some(503));
    assert_eq!(v.get("error_code").and_then(Value::as_str), Some("fault"));
    server.stop();
    server.join();

    // Partial rate: the fault pattern over a fixed request sequence is a
    // pure function of (seed, rate) — two identically configured daemons
    // agree on exactly which requests fault, and the accounting invariant
    // holds with faulted requests binned as served.
    let observe = || {
        let server = fault_server(0.4);
        let addr = server.local_addr();
        let outcomes: Vec<bool> = (0..20u64)
            .map(|i| {
                let reply = roundtrip(addr, &request(5000 + i, 4, false).to_line());
                reply.contains("\"error_code\":\"fault\"")
            })
            .collect();
        let stats_reply = roundtrip(addr, r#"{"op":"stats"}"#);
        let stats = parse(&stats_reply).unwrap();
        let stats = stats.get("stats").unwrap().clone();
        let n = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap();
        assert_eq!(
            n("faults") as usize,
            outcomes.iter().filter(|&&f| f).count()
        );
        assert_eq!(
            n("submitted"),
            n("served") + n("cache_hits") + n("rejected")
        );
        server.stop();
        server.join();
        outcomes
    };
    let a = observe();
    let b = observe();
    assert_eq!(a, b, "fault pattern must be deterministic in (seed, rate)");
    assert!(
        a.iter().any(|&f| f),
        "rate 0.4 over 20 requests faults some"
    );
    assert!(
        !a.iter().all(|&f| f),
        "rate 0.4 over 20 requests spares some"
    );
}

#[test]
fn post_shutdown_requests_are_refused() {
    let server = start(1, 4);
    let addr = server.local_addr();
    roundtrip(addr, r#"{"op":"shutdown"}"#);
    server.join();
    // The listener is gone: connecting now must fail (or be refused
    // immediately); either way no zombie daemon remains.
    let connect = TcpStream::connect(addr);
    if let Ok(mut stream) = connect {
        // A connect may be absorbed by TIME_WAIT races; a write+read must
        // then fail or return nothing.
        let _ = stream.write_all(b"{\"op\":\"stats\"}\n");
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        let n = reader.read_line(&mut reply).unwrap_or(0);
        assert_eq!(n, 0, "daemon answered after shutdown: {reply}");
    }
}
