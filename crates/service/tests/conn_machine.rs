//! Connection-state-machine suite: drives [`ConnMachine`] plus the typed
//! [`Request`]/[`Reply`] protocol API as a synchronous in-memory server —
//! no sockets, no threads — so framing and reply-ordering invariants are
//! checked in isolation from the event loop.
//!
//! The anchor property (proptest): **any** byte-chunking of a valid
//! request stream, drained through **any** sequence of partial-write
//! capacities, yields a reply byte stream identical to whole-line
//! delivery with unbounded writes.

use hcs_core::MapWorkspace;
use hcs_service::protocol::{self, ProtocolError, Reply, Request};
use hcs_service::{ConnMachine, Frame};
use proptest::prelude::*;

/// Renders a reply to its full line bytes (trailing newline included).
fn line_bytes(reply: &Reply) -> Vec<u8> {
    let mut buf = Vec::new();
    reply.write_to(&mut buf).unwrap();
    buf
}

/// Handles every frame the machine currently has, executing map work
/// synchronously — the sockets-free analogue of the event loop's dispatch
/// plus an instant worker pool.
fn handle_ready_frames(m: &mut ConnMachine, ws: &mut MapWorkspace) {
    while let Some(frame) = m.next_frame() {
        match frame {
            Frame::Oversized => {
                let slot = m.open_slot();
                let reply = Reply::Error(ProtocolError::bad_request("request line too long"));
                m.fill(slot, line_bytes(&reply));
            }
            Frame::Line(range) => {
                let bytes = m.line(range).to_vec();
                if bytes.iter().all(u8::is_ascii_whitespace) {
                    continue;
                }
                match Request::parse(&bytes) {
                    Err(e) => {
                        let slot = m.open_slot();
                        m.fill(slot, line_bytes(&Reply::Error(e)));
                    }
                    Ok(Request::Map(req)) => {
                        let rid = req.rid;
                        let slot = m.open_slot();
                        let reply = match protocol::execute(&req, ws) {
                            Ok(result) => Reply::Map {
                                result,
                                cached: false,
                                rid,
                            },
                            Err(e) => Reply::Error(e),
                        };
                        m.fill(slot, line_bytes(&reply));
                    }
                    Ok(Request::MapBatch(batch)) => {
                        let slot = m.open_batch(batch.items.len());
                        for (i, item) in batch.items.into_iter().enumerate() {
                            let json = match item {
                                Err(e) => e.to_value().to_string(),
                                Ok(req) => {
                                    let rid = req.rid;
                                    match protocol::execute(&req, ws) {
                                        Ok(result) => {
                                            protocol::stamp_rid(result.to_value(false), rid)
                                                .to_string()
                                        }
                                        Err(e) => e.to_value().to_string(),
                                    }
                                }
                            };
                            m.fill_batch_item(slot, i, json);
                        }
                    }
                    Ok(Request::Shutdown) => {
                        let slot = m.open_slot();
                        m.fill(slot, line_bytes(&Reply::Draining));
                    }
                    // Control verbs whose payload depends on live daemon
                    // state; the generator never produces them.
                    Ok(other) => panic!("unexpected control verb in stream: {other:?}"),
                }
            }
        }
    }
}

/// Feeds `input` through a fresh machine split at `cuts`, draining at most
/// `capacities[k]` bytes per write turn (cycled; `usize::MAX` = greedy),
/// and returns the complete reply byte stream.
fn run_chunked(input: &[u8], cuts: &[usize], capacities: &[usize]) -> Vec<u8> {
    let mut m = ConnMachine::new(1 << 20);
    let mut ws = MapWorkspace::new();
    let mut out = Vec::new();
    let mut cap_turn = 0usize;
    let mut drain = |m: &mut ConnMachine, out: &mut Vec<u8>| {
        while m.wants_write() {
            let cap = capacities[cap_turn % capacities.len()].max(1);
            cap_turn += 1;
            let take = m.writable().len().min(cap);
            out.extend_from_slice(&m.writable()[..take]);
            m.consume(take);
        }
    };

    let mut start = 0usize;
    let mut boundaries: Vec<usize> = cuts.iter().map(|&c| c % (input.len() + 1)).collect();
    boundaries.push(input.len());
    boundaries.sort_unstable();
    for end in boundaries {
        let mut chunk = &input[start..end.max(start)];
        start = start.max(end);
        // One "read" may itself be larger than the offered buffer space,
        // exactly as a real socket read loop would split it.
        while !chunk.is_empty() {
            let space = m.read_space();
            let n = space.len().min(chunk.len());
            space[..n].copy_from_slice(&chunk[..n]);
            m.commit(n);
            chunk = &chunk[n..];
            handle_ready_frames(&mut m, &mut ws);
            drain(&mut m, &mut out);
        }
    }
    assert!(!m.has_pending(), "stream fully handled leaves no open slot");
    out
}

/// A small deterministic request stream exercising every frame shape:
/// single maps (with and without rid), a malformed line, a blank line,
/// and a batch with a poisoned item.
fn sample_stream() -> Vec<u8> {
    let mut s = Vec::new();
    s.extend_from_slice(b"{\"etc\":[[2,6],[3,4],[8,3]],\"heuristic\":\"min-min\"}\n");
    s.extend_from_slice(b"not json at all\n");
    s.extend_from_slice(b"\n");
    s.extend_from_slice(b"{\"etc\":[[1,2]],\"heuristic\":\"mct\",\"rid\":\"2a\"}\n");
    s.extend_from_slice(
        b"{\"op\":\"map_batch\",\"items\":[{\"etc\":[[5,1]],\"heuristic\":\"mct\"},{\"oops\":1},{\"etc\":[[2,2]],\"heuristic\":\"olb\"}]}\n",
    );
    s.extend_from_slice(b"{\"etc\":[[4,4],[1,9]],\"heuristic\":\"max-min\"}\n");
    s
}

#[test]
fn one_byte_reads_match_whole_line_delivery() {
    let input = sample_stream();
    let whole = run_chunked(&input, &[], &[usize::MAX]);
    let cuts: Vec<usize> = (1..input.len()).collect();
    let byte_at_a_time = run_chunked(&input, &cuts, &[usize::MAX]);
    assert_eq!(whole, byte_at_a_time);
    // Sanity: replies landed in request order with the expected shapes.
    let text = String::from_utf8(whole).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "{text}");
    assert!(lines[0].contains("\"makespan\":5"), "{}", lines[0]);
    assert!(lines[1].contains("\"code\":400"), "{}", lines[1]);
    assert!(
        lines[2].contains("\"rid\":\"000000000000002a\""),
        "{}",
        lines[2]
    );
    assert!(
        lines[3].starts_with("{\"ok\":true,\"v\":1,\"items\":["),
        "{}",
        lines[3]
    );
    assert!(lines[3].contains("\"code\":400"), "{}", lines[3]);
    assert!(lines[4].contains("\"makespan\""), "{}", lines[4]);
}

#[test]
fn pipelined_requests_in_one_read_answer_in_order() {
    let input = sample_stream();
    // Whole stream in one read, vs one line per read.
    let one_read = run_chunked(&input, &[], &[usize::MAX]);
    let line_cuts: Vec<usize> = input
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i + 1))
        .collect();
    let per_line = run_chunked(&input, &line_cuts, &[usize::MAX]);
    assert_eq!(one_read, per_line);
}

#[test]
fn partial_writes_under_a_full_socket_buffer_lose_nothing() {
    let input = sample_stream();
    let greedy = run_chunked(&input, &[], &[usize::MAX]);
    // Worst case: the "socket" accepts one byte per turn.
    let trickle = run_chunked(&input, &[], &[1]);
    assert_eq!(greedy, trickle);
    // Mixed capacities, including stalls broken by tiny progress.
    let mixed = run_chunked(&input, &[], &[7, 1, 64, 3]);
    assert_eq!(greedy, mixed);
}

/// One generated map request (kept tiny: the property is about framing,
/// not the kernel).
fn gen_request_line() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Valid single map over a small random matrix.
        (1usize..4, 1usize..3, 0usize..2).prop_map(|(t, m, rid)| {
            let rid = rid == 1;
            let rows: Vec<String> = (0..t)
                .map(|i| {
                    let cells: Vec<String> =
                        (0..m).map(|j| format!("{}", 1 + ((i * 3 + j * 5) % 9))).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            let rid = if rid { ",\"rid\":\"a1\"" } else { "" };
            format!(
                "{{\"etc\":[{}],\"heuristic\":\"mct\"{rid}}}\n",
                rows.join(",")
            )
            .into_bytes()
        }),
        // Malformed line: must produce a 400 and not desync the stream.
        Just(b"definitely not json\n".to_vec()),
        // Small batch with one poisoned item.
        (1usize..3).prop_map(|t| {
            format!(
                "{{\"op\":\"map_batch\",\"items\":[{{\"etc\":[[{t},1]],\"heuristic\":\"mct\"}},{{\"bad\":true}}]}}\n"
            )
            .into_bytes()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chunking × any write capacities == whole-line delivery.
    #[test]
    fn any_chunking_yields_identical_replies(
        lines in proptest::collection::vec(gen_request_line(), 1..6),
        cuts in proptest::collection::vec(0usize..4096, 0..12),
        caps in proptest::collection::vec(1usize..512, 1..6),
    ) {
        let input: Vec<u8> = lines.concat();
        let reference = run_chunked(&input, &[], &[usize::MAX]);
        let chunked = run_chunked(&input, &cuts, &caps);
        prop_assert_eq!(reference, chunked);
    }
}
