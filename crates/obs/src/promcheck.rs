//! A minimal Prometheus text-format validator for CI smoke tests.
//!
//! This is not a full parser for the exposition spec — it checks exactly
//! the properties our `METRICS` contract promises and that a scrape would
//! choke on:
//!
//! * every line is a `# HELP`/`# TYPE` comment or a well-formed sample
//!   (`name{labels} value`) — no trailing garbage, balanced label quoting;
//! * every sample's family has a preceding `# TYPE` header (histogram
//!   suffixes `_bucket`/`_sum`/`_count` resolve to their base family);
//! * each histogram family has cumulative non-decreasing `_bucket` counts
//!   ending in `le="+Inf"`, and that `+Inf` count equals `_count`.
//!
//! [`validate_prometheus`] returns the first violation with its line
//! number, so a failing smoke test names the malformed line directly.

use std::collections::HashMap;

/// Validates Prometheus text exposition; `Err` names the first bad line.
///
/// See the [module docs](self) for exactly what is checked.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    // Family name -> declared type.
    let mut types: HashMap<String, String> = HashMap::new();
    // Histogram family -> (bucket `le` label, cumulative count) in order.
    let mut hist_buckets: HashMap<String, Vec<(String, u64)>> = HashMap::new();
    let mut hist_counts: HashMap<String, u64> = HashMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("").trim();
                if !valid_name(name) {
                    return Err(format!(
                        "line {lineno}: invalid metric name in TYPE: {line}"
                    ));
                }
                const KINDS: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];
                if !KINDS.contains(&kind) {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
            } else if comment.strip_prefix("HELP ").is_some() {
                // HELP text is free-form; nothing further to check.
            }
            // Other comments are legal and ignored.
            continue;
        }

        let (name, labels, value) =
            parse_sample(line).map_err(|e| format!("line {lineno}: {e}: {line}"))?;
        let family = base_family(&name, &types);
        let Some(kind) = types.get(&family) else {
            return Err(format!(
                "line {lineno}: sample {name} has no preceding # TYPE header"
            ));
        };
        if kind == "histogram" {
            if name == format!("{family}_bucket") {
                let Some(le) = labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v) else {
                    return Err(format!("line {lineno}: histogram bucket without le label"));
                };
                let count = value.parse::<u64>().map_err(|_| {
                    format!("line {lineno}: bucket count {value:?} is not an integer")
                })?;
                hist_buckets
                    .entry(family.clone())
                    .or_default()
                    .push((le.clone(), count));
            } else if name == format!("{family}_count") {
                let count = value.parse::<u64>().map_err(|_| {
                    format!("line {lineno}: histogram count {value:?} is not an integer")
                })?;
                hist_counts.insert(family.clone(), count);
            }
        }
    }

    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let Some(buckets) = hist_buckets.get(family) else {
            return Err(format!("histogram {family} has no _bucket samples"));
        };
        match buckets.last() {
            Some((le, inf_count)) if le == "+Inf" => {
                if let Some(total) = hist_counts.get(family) {
                    if inf_count != total {
                        return Err(format!(
                            "histogram {family}: +Inf bucket {inf_count} != _count {total}"
                        ));
                    }
                } else {
                    return Err(format!("histogram {family} has no _count sample"));
                }
            }
            _ => {
                return Err(format!(
                    "histogram {family}: bucket series must end with le=\"+Inf\""
                ));
            }
        }
        let mut last = 0u64;
        for (le, count) in buckets {
            if *count < last {
                return Err(format!(
                    "histogram {family}: bucket le={le:?} count {count} decreases from {last}"
                ));
            }
            last = *count;
        }
    }
    Ok(())
}

/// Resolves a sample name to its family: histogram suffixes map to the
/// declared histogram family; everything else is its own family.
fn base_family(name: &str, types: &HashMap<String, String>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base.to_string();
            }
        }
    }
    name.to_string()
}

type Labels = Vec<(String, String)>;

/// Parses `name{labels} value` into its parts.
fn parse_sample(line: &str) -> Result<(String, Labels, String), String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() && !matches!(bytes[i], b'{' | b' ') {
        i += 1;
    }
    let name = &line[..i];
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    if i < bytes.len() && bytes[i] == b'{' {
        i += 1;
        loop {
            if i >= bytes.len() {
                return Err("unterminated label set".to_string());
            }
            if bytes[i] == b'}' {
                i += 1;
                break;
            }
            let key_start = i;
            while i < bytes.len() && bytes[i] != b'=' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err("label without '='".to_string());
            }
            let key = &line[key_start..i];
            if !valid_label(key) {
                return Err(format!("invalid label name {key:?}"));
            }
            i += 1; // '='
            if i >= bytes.len() || bytes[i] != b'"' {
                return Err("label value must be double-quoted".to_string());
            }
            i += 1; // opening quote
            let mut value = String::new();
            loop {
                if i >= bytes.len() {
                    return Err("unterminated label value".to_string());
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        i += 1;
                        if i >= bytes.len() {
                            return Err("dangling escape in label value".to_string());
                        }
                        match bytes[i] {
                            b'"' => value.push('"'),
                            b'\\' => value.push('\\'),
                            b'n' => value.push('\n'),
                            other => {
                                return Err(format!(
                                    "bad escape \\{} in label value",
                                    other as char
                                ))
                            }
                        }
                        i += 1;
                    }
                    _ => {
                        // Advance one whole UTF-8 scalar, not one byte.
                        let ch = line[i..].chars().next().expect("in-bounds char");
                        value.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            labels.push((key.to_string(), value));
            if i < bytes.len() && bytes[i] == b',' {
                i += 1;
            }
        }
    }
    if i >= bytes.len() || bytes[i] != b' ' {
        return Err("missing space before sample value".to_string());
    }
    let rest = line[i + 1..].trim();
    let mut parts = rest.split_whitespace();
    let value = parts
        .next()
        .ok_or_else(|| "missing sample value".to_string())?;
    // An optional integer timestamp may follow the value; anything further
    // is garbage.
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("trailing garbage {ts:?} after sample value"));
        }
    }
    if parts.next().is_some() {
        return Err("trailing garbage after timestamp".to_string());
    }
    if !matches!(value, "+Inf" | "-Inf" | "NaN") && value.parse::<f64>().is_err() {
        return Err(format!("sample value {value:?} is not a number"));
    }
    Ok((name.to_string(), labels, value.to_string()))
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn registry_output_validates() {
        let r = Registry::new();
        r.counter("served_total", "Requests served.").add(3);
        r.counter_with("replies_total", "By status.", &[("status", "ok")])
            .inc();
        r.gauge("queue_depth", "Jobs waiting.").set(2);
        let h = r.histogram("latency_us", "Latency.");
        h.record_value(3);
        h.record_value(5000);
        h.record_value(u64::MAX);
        validate_prometheus(&r.prometheus_text()).expect("registry output must validate");
    }

    #[test]
    fn empty_input_validates() {
        validate_prometheus("").unwrap();
    }

    #[test]
    fn sample_without_type_header_fails() {
        let err = validate_prometheus("orphan_total 3\n").unwrap_err();
        assert!(err.contains("no preceding # TYPE"), "{err}");
    }

    #[test]
    fn malformed_lines_fail_with_line_numbers() {
        let cases = [
            ("# TYPE ok counter\nok 1\nbad name 2\n", "line 3"),
            ("# TYPE ok counter\nok notanumber\n", "not a number"),
            ("# TYPE ok counter\nok{unclosed=\"v 1\n", "unterminated"),
            ("# TYPE ok counter\nok{k=\"v\"}1\n", "missing space"),
            ("# TYPE ok wat\n", "unknown metric type"),
            ("# TYPE ok counter\n# TYPE ok counter\n", "duplicate TYPE"),
            ("# TYPE ok counter\nok 1 12345 extra\n", "trailing garbage"),
        ];
        for (text, needle) in cases {
            let err = validate_prometheus(text).unwrap_err();
            assert!(err.contains(needle), "expected {needle:?} in {err:?}");
        }
    }

    #[test]
    fn histogram_without_inf_bucket_fails() {
        let text = "# TYPE lat histogram\n\
                    lat_bucket{le=\"1\"} 1\n\
                    lat_sum 1\n\
                    lat_count 1\n";
        let err = validate_prometheus(text).unwrap_err();
        assert!(err.contains("+Inf"), "{err}");
    }

    #[test]
    fn histogram_with_decreasing_buckets_fails() {
        let text = "# TYPE lat histogram\n\
                    lat_bucket{le=\"1\"} 5\n\
                    lat_bucket{le=\"2\"} 3\n\
                    lat_bucket{le=\"+Inf\"} 5\n\
                    lat_sum 9\n\
                    lat_count 5\n";
        let err = validate_prometheus(text).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
    }

    #[test]
    fn histogram_inf_count_mismatch_fails() {
        let text = "# TYPE lat histogram\n\
                    lat_bucket{le=\"+Inf\"} 4\n\
                    lat_sum 9\n\
                    lat_count 5\n";
        let err = validate_prometheus(text).unwrap_err();
        assert!(err.contains("!= _count"), "{err}");
    }

    #[test]
    fn escaped_label_values_parse() {
        let text = "# TYPE c counter\nc{path=\"a\\\"b\\\\c\\nd\"} 1\n";
        validate_prometheus(text).unwrap();
    }

    #[test]
    fn timestamps_are_accepted() {
        let text = "# TYPE c counter\nc 1 1712345678\n";
        validate_prometheus(text).unwrap();
    }
}
