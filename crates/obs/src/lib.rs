//! `hcs-obs`: the observability substrate shared by the whole HC suite.
//!
//! The paper's entire argument is about *per-round, per-machine* behavior —
//! which machine is the makespan machine each iteration, how the balance
//! index and the non-makespan completion times evolve — and a production
//! mapping service needs the matching operational view: request counters,
//! latency distributions, and per-phase timing breakdowns. This crate
//! provides both halves as one substrate:
//!
//! * **Metrics** ([`registry`]): named [`Counter`]s, [`Gauge`]s and
//!   power-of-two [`Histogram`]s with label support, registered in a
//!   [`Registry`] and exposed in two formats — Prometheus text exposition
//!   ([`Registry::prometheus_text`]) and a JSON snapshot
//!   ([`Registry::json_snapshot`]). A process-global default registry is
//!   available via [`Registry::global`]; components that need isolation
//!   (one daemon per test, say) own their own.
//!
//! * **Tracing** ([`trace`]): a typed [`TraceEvent`] stream behind the
//!   [`TraceSink`] trait. Emitters check [`TraceSink::enabled`] (or hold an
//!   `Option<sink>`) so the disabled path costs one branch — no
//!   timestamping, no formatting, no allocation. Sinks include the
//!   lock-free bounded [`TraceBuffer`] ring (what a daemon keeps), the
//!   collecting [`VecSink`] (tests and the CLI), and the no-op
//!   [`NullSink`]. Events render to JSONL via
//!   [`TraceEvent::to_json_line`].
//!
//! * **Correlation** ([`span`]): deterministic 64-bit [`RequestId`]s
//!   (splitmix64 over a client seed + counter), per-request
//!   [`SpanRecord`] phase timelines, and the bounded rid-indexed
//!   [`SpanStore`] — the substrate that lets a `TRACE` query reconstruct
//!   one request's queue-wait/cache/kernel/serialize breakdown even after
//!   the shared trace ring has wrapped.
//!
//! * **Validation** ([`promcheck`]): a minimal Prometheus text-format
//!   validator used by CI smoke tests to keep the `METRICS` exposition
//!   well-formed.
//!
//! The crate is std-only and sits *below* `hcs-core`, so the scheduling
//! kernel itself can emit events without a dependency cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod hist;
pub mod promcheck;
pub mod registry;
pub mod span;
pub mod trace;

pub use hist::{Histogram, BUCKETS};
pub use promcheck::validate_prometheus;
pub use registry::{Counter, Gauge, Registry};
pub use span::{PhaseSpan, RequestId, SpanRecord, SpanStore};
pub use trace::{NullSink, SpanTimer, TraceBuffer, TraceEvent, TraceSink, VecSink};
