//! Named metric families with label support and dual exposition.
//!
//! A [`Registry`] owns *families* (one per metric name), each holding one or
//! more *series* (one per label set). Handles ([`Counter`], [`Gauge`],
//! [`Arc<Histogram>`](crate::Histogram)) are cheap atomically-updated clones:
//! registration takes the registry lock once, after which the hot path is a
//! single relaxed atomic op with no locking. Registering the same
//! `(name, labels)` pair again returns a handle to the *existing* series, so
//! independent components can share a metric without coordinating;
//! registering a name with a different metric kind is a programmer error and
//! panics.
//!
//! Two exposition formats cover the two consumers in this repo:
//! [`Registry::prometheus_text`] renders the standard text format (counters,
//! gauges, and cumulative `_bucket`/`_sum`/`_count` histogram lines ending
//! in `le="+Inf"`), and [`Registry::json_snapshot`] renders a deterministic
//! JSON object for line-protocol replies and bench records.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{Histogram, BUCKETS};

/// A monotonically increasing counter handle.
///
/// Clones share the same underlying cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increments the counter by one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the counter by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current counter value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways (queue depth, workers).
///
/// Clones share the same underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current gauge value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn prom_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Value(Arc<AtomicU64>),
    Hist(Arc<Histogram>),
}

#[derive(Debug, Clone)]
struct Series {
    labels: Vec<(String, String)>,
    cell: Cell,
}

#[derive(Debug, Clone)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A collection of metric families; see the [module docs](self).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global default registry.
    ///
    /// Components that need isolation (one daemon per test) should own a
    /// `Registry` instead; the global exists for one-shot tools like the
    /// CLI where plumbing a registry through every layer buys nothing.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Registers (or retrieves) an unlabeled counter.
    ///
    /// # Panics
    /// If `name` is not a valid metric name, or is already registered as a
    /// different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with the given label set.
    ///
    /// # Panics
    /// If `name` or a label name is invalid, or `name` is already
    /// registered as a different kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels) {
            Cell::Value(cell) => Counter { cell },
            Cell::Hist(_) => unreachable!("counter family holds value cells"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    ///
    /// # Panics
    /// If `name` is not a valid metric name, or is already registered as a
    /// different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with the given label set.
    ///
    /// # Panics
    /// If `name` or a label name is invalid, or `name` is already
    /// registered as a different kind.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels) {
            Cell::Value(cell) => Gauge { cell },
            Cell::Hist(_) => unreachable!("gauge family holds value cells"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    ///
    /// # Panics
    /// If `name` is not a valid metric name, or is already registered as a
    /// different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a histogram with the given label set.
    ///
    /// # Panics
    /// If `name` or a label name is invalid, or `name` is already
    /// registered as a different kind.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, Kind::Histogram, labels) {
            Cell::Hist(h) => h,
            Cell::Value(_) => unreachable!("histogram family holds histogram cells"),
        }
    }

    fn register(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Cell {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} already registered as {} (requested {})",
                    f.kind.prom_name(),
                    kind.prom_name()
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            return series.cell.clone();
        }
        let cell = match kind {
            Kind::Counter | Kind::Gauge => Cell::Value(Arc::new(AtomicU64::new(0))),
            Kind::Histogram => Cell::Hist(Arc::new(Histogram::new())),
        };
        family.series.push(Series {
            labels,
            cell: cell.clone(),
        });
        cell
    }

    fn snapshot(&self) -> Vec<Family> {
        let mut families = self.families.lock().expect("registry poisoned").clone();
        families.sort_by(|a, b| a.name.cmp(&b.name));
        families
    }

    /// Renders every family in the Prometheus text exposition format.
    ///
    /// Each family gets `# HELP` and `# TYPE` headers followed by one
    /// sample line per series. Histograms render the standard cumulative
    /// `name_bucket{le="..."}` lines (bounds `2^0 .. 2^(BUCKETS-2)`; the
    /// final clamp bucket folds into `le="+Inf"` so cumulative counts stay
    /// exact) plus `name_sum` and `name_count`.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for family in self.snapshot() {
            out.push_str(&format!(
                "# HELP {} {}\n",
                family.name,
                escape_help(&family.help)
            ));
            out.push_str(&format!(
                "# TYPE {} {}\n",
                family.name,
                family.kind.prom_name()
            ));
            for series in &family.series {
                match &series.cell {
                    Cell::Value(v) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            v.load(Ordering::Relaxed)
                        ));
                    }
                    Cell::Hist(h) => {
                        let counts = h.bucket_counts();
                        let mut cumulative = 0u64;
                        for (i, c) in counts.iter().enumerate().take(BUCKETS - 1) {
                            cumulative += c;
                            let le = Histogram::bucket_bound(i).to_string();
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                family.name,
                                render_labels(&series.labels, Some(&le)),
                                cumulative
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            family.name,
                            render_labels(&series.labels, Some("+Inf")),
                            h.count()
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            h.sum()
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            family.name,
                            render_labels(&series.labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders every family as one deterministic JSON object.
    ///
    /// Counters and gauges become `"name{labels}": value` number members;
    /// each histogram series becomes an object member with `count`, `sum`,
    /// `max`, `p50`, `p95`, and `p99`. Families are sorted by name, so the
    /// output is byte-stable for a given registry state.
    pub fn json_snapshot(&self) -> String {
        let mut members: Vec<String> = Vec::new();
        for family in self.snapshot() {
            for series in &family.series {
                let key = format!("{}{}", family.name, render_labels(&series.labels, None));
                match &series.cell {
                    Cell::Value(v) => {
                        members.push(format!(
                            "{}:{}",
                            json_string(&key),
                            v.load(Ordering::Relaxed)
                        ));
                    }
                    Cell::Hist(h) => {
                        members.push(format!(
                            "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                            json_string(&key),
                            h.count(),
                            h.sum(),
                            h.max(),
                            h.percentile(50.0),
                            h.percentile(95.0),
                            h.percentile(99.0),
                        ));
                    }
                }
            }
        }
        format!("{{{}}}", members.join(","))
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Renders `{k="v",...}` (empty string for no labels), optionally with a
/// trailing `le` label appended for histogram bucket lines.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_series_across_registrations() {
        let r = Registry::new();
        let a = r.counter("requests_total", "Requests seen.");
        let b = r.counter("requests_total", "ignored on re-registration");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        let ok = r.counter_with("replies_total", "Replies by status.", &[("status", "ok")]);
        let err = r.counter_with("replies_total", "Replies by status.", &[("status", "err")]);
        ok.add(5);
        err.inc();
        assert_eq!(ok.get(), 5);
        assert_eq!(err.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("mixed", "first as counter");
        let _ = r.gauge("mixed", "then as gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let r = Registry::new();
        let _ = r.counter("bad name", "spaces are not allowed");
    }

    #[test]
    fn prometheus_text_renders_headers_and_samples() {
        let r = Registry::new();
        r.counter("served_total", "Requests served.").add(7);
        r.gauge("queue_depth", "Jobs waiting.").set(3);
        let text = r.prometheus_text();
        assert!(text.contains("# HELP served_total Requests served.\n"));
        assert!(text.contains("# TYPE served_total counter\n"));
        assert!(text.contains("served_total 7\n"));
        assert!(text.contains("# TYPE queue_depth gauge\n"));
        assert!(text.contains("queue_depth 3\n"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_end_in_inf() {
        let r = Registry::new();
        let h = r.histogram("latency_us", "Request latency in microseconds.");
        h.record_value(3); // bucket le="4"
        h.record_value(3);
        h.record_value(u64::MAX); // clamp bucket -> only visible at +Inf
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE latency_us histogram\n"));
        assert!(text.contains("latency_us_bucket{le=\"2\"} 0\n"));
        assert!(text.contains("latency_us_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_us_count 3\n"));
        assert!(text.lines().any(|l| l.starts_with("latency_us_sum ")));
        // Cumulative counts never decrease across bucket lines.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("latency_us_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn json_snapshot_is_deterministic_and_sorted() {
        let r = Registry::new();
        r.counter("b_total", "b").inc();
        r.counter("a_total", "a").add(2);
        let h = r.histogram_with("lat", "lat", &[("phase", "map")]);
        h.record_value(3);
        let snap = r.json_snapshot();
        assert_eq!(
            snap,
            "{\"a_total\":2,\"b_total\":1,\"lat{phase=\\\"map\\\"}\":{\"count\":1,\"sum\":3,\"max\":3,\"p50\":4,\"p95\":4,\"p99\":4}}"
        );
        assert_eq!(snap, r.json_snapshot());
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("c_total", "c", &[("path", "a\"b\\c")]).inc();
        let text = r.prometheus_text();
        assert!(text.contains("c_total{path=\"a\\\"b\\\\c\"} 1\n"));
    }

    #[test]
    fn global_registry_is_shared() {
        let a = Registry::global().counter("obs_global_probe_total", "probe");
        let b = Registry::global().counter("obs_global_probe_total", "probe");
        a.inc();
        assert_eq!(b.get(), a.get());
    }
}
