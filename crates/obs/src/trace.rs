//! Structured tracing: typed events, sinks, a bounded ring, span timers.
//!
//! Emitters talk to a [`TraceSink`]; the contract that keeps the scheduling
//! kernel honest is [`TraceSink::enabled`]: every instrumentation site must
//! check it (or hold an `Option<sink>`) *before* doing any work — no
//! `Instant::now()`, no formatting, no allocation on the disabled path. The
//! driver's inner loop runs millions of times in a Monte-Carlo study;
//! tracing that costs anything when off would show up immediately in
//! `BENCH_kernel.json`.
//!
//! Three sinks cover the stack: [`NullSink`] (always disabled — the default
//! when an `IterativeRun` has no sink attached), [`VecSink`] (collects everything; tests and
//! the one-shot `nonmakespan trace` CLI), and [`TraceBuffer`] (a bounded
//! ring a long-running daemon keeps — old events are overwritten, a
//! `TRACE` request snapshots the survivors in order).
//!
//! Events are plain-old-data over raw `u32`/`u64`/`f64` so this crate stays
//! below `hcs-core` in the dependency graph; the driver converts its typed
//! ids at the emission site. [`TraceEvent::to_json_line`] renders one JSONL
//! record per event.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One structured trace event; see each variant for the emission site.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The iterative driver is about to run the inner heuristic on the
    /// surviving scenario (emitted once per round, before mapping).
    RoundStart {
        /// Zero-based round index.
        round: u32,
        /// Machines still alive (unfrozen) this round.
        machines: u32,
        /// Tasks still unassigned this round.
        tasks: u32,
    },
    /// The round's mapping finished and its makespan machine was picked.
    RoundEnd {
        /// Zero-based round index.
        round: u32,
        /// Machine (original id) with the largest completion time.
        makespan_machine: u32,
        /// That machine's completion time.
        makespan: f64,
        /// min/max over the round's machine completion times (1.0 when the
        /// makespan is 0): the paper's balance index applied to one round.
        balance_index: f64,
    },
    /// A machine was frozen at the end of a round.
    MachineFrozen {
        /// Zero-based round index.
        round: u32,
        /// Frozen machine's original id.
        machine: u32,
        /// Its final (frozen) completion time.
        finish: f64,
    },
    /// Per-machine comparison of the first round's finish time against the
    /// frozen final finish time (emitted once per machine after the loop).
    FinishDelta {
        /// Machine's original id.
        machine: u32,
        /// Finish time in the original (round 0) mapping.
        original: f64,
        /// Frozen finish time after the iterative technique.
        final_finish: f64,
    },
    /// Kernel phase timing for one round (only when kernel timing is on).
    KernelPhases {
        /// Zero-based round index.
        round: u32,
        /// Time spent scanning candidates (`refresh`), in microseconds.
        scan_us: u64,
        /// Time spent committing assignments, in microseconds.
        commit_us: u64,
        /// Time spent invalidating stale cache rows, in microseconds.
        invalidate_us: u64,
    },
    /// A heuristic committed one task to one machine.
    TaskCommitted {
        /// Task id.
        task: u32,
        /// Machine id (within the current scenario).
        machine: u32,
    },
    /// The service answered a MAP request from the result cache.
    CacheHit {
        /// The request's instance digest.
        digest: u64,
        /// Correlation id of the request (0 = unattributed).
        rid: u64,
    },
    /// A service worker finished one request (timing breakdown).
    WorkerServe {
        /// Correlation id of the request (0 = unattributed).
        rid: u64,
        /// Time the job waited in the queue, in microseconds.
        queue_wait_us: u64,
        /// Time spent mapping (including serialization), in microseconds.
        map_us: u64,
    },
    /// A scoped span closed (see [`SpanTimer`]).
    Span {
        /// Correlation id of the request (0 = unattributed, e.g. kernel
        /// phase spans emitted outside any request context).
        rid: u64,
        /// Static phase name given to the timer.
        phase: &'static str,
        /// Wall time between open and close, in microseconds.
        elapsed_us: u64,
    },
}

impl TraceEvent {
    /// Short machine-readable name of the variant (the JSONL `event` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::MachineFrozen { .. } => "machine_frozen",
            TraceEvent::FinishDelta { .. } => "finish_delta",
            TraceEvent::KernelPhases { .. } => "kernel_phases",
            TraceEvent::TaskCommitted { .. } => "task_committed",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::WorkerServe { .. } => "worker_serve",
            TraceEvent::Span { .. } => "span",
        }
    }

    /// The request correlation id stamped on this event, if any. Only the
    /// service-side events (cache hits, worker serves, spans) carry one;
    /// kernel events are emitted outside any request context, and a rid
    /// of 0 means "unattributed" even on a service event.
    pub fn rid(&self) -> Option<u64> {
        match self {
            TraceEvent::CacheHit { rid, .. }
            | TraceEvent::WorkerServe { rid, .. }
            | TraceEvent::Span { rid, .. }
                if *rid != 0 =>
            {
                Some(*rid)
            }
            _ => None,
        }
    }

    /// Renders the event as one JSON line (no trailing newline):
    /// `{"seq":N,"event":"...",...fields}`.
    ///
    /// The cache digest and the rid are rendered as hex *strings* because
    /// a u64 exceeds f64 integer precision and would be silently mangled
    /// by JSON consumers that parse numbers as doubles. An unattributed
    /// rid (0) is omitted entirely, keeping pre-correlation trace lines
    /// byte-identical.
    pub fn to_json_line(&self, seq: u64) -> String {
        let mut out = format!("{{\"seq\":{seq},\"event\":\"{}\"", self.kind());
        match self {
            TraceEvent::RoundStart {
                round,
                machines,
                tasks,
            } => {
                out.push_str(&format!(
                    ",\"round\":{round},\"machines\":{machines},\"tasks\":{tasks}"
                ));
            }
            TraceEvent::RoundEnd {
                round,
                makespan_machine,
                makespan,
                balance_index,
            } => {
                out.push_str(&format!(
                    ",\"round\":{round},\"makespan_machine\":{makespan_machine},\"makespan\":{},\"balance_index\":{}",
                    fmt_f64(*makespan),
                    fmt_f64(*balance_index)
                ));
            }
            TraceEvent::MachineFrozen {
                round,
                machine,
                finish,
            } => {
                out.push_str(&format!(
                    ",\"round\":{round},\"machine\":{machine},\"finish\":{}",
                    fmt_f64(*finish)
                ));
            }
            TraceEvent::FinishDelta {
                machine,
                original,
                final_finish,
            } => {
                out.push_str(&format!(
                    ",\"machine\":{machine},\"original\":{},\"final\":{}",
                    fmt_f64(*original),
                    fmt_f64(*final_finish)
                ));
            }
            TraceEvent::KernelPhases {
                round,
                scan_us,
                commit_us,
                invalidate_us,
            } => {
                out.push_str(&format!(
                    ",\"round\":{round},\"scan_us\":{scan_us},\"commit_us\":{commit_us},\"invalidate_us\":{invalidate_us}"
                ));
            }
            TraceEvent::TaskCommitted { task, machine } => {
                out.push_str(&format!(",\"task\":{task},\"machine\":{machine}"));
            }
            TraceEvent::CacheHit { digest, rid } => {
                push_rid(&mut out, *rid);
                out.push_str(&format!(",\"digest\":\"{digest:016x}\""));
            }
            TraceEvent::WorkerServe {
                rid,
                queue_wait_us,
                map_us,
            } => {
                push_rid(&mut out, *rid);
                out.push_str(&format!(
                    ",\"queue_wait_us\":{queue_wait_us},\"map_us\":{map_us}"
                ));
            }
            TraceEvent::Span {
                rid,
                phase,
                elapsed_us,
            } => {
                push_rid(&mut out, *rid);
                out.push_str(&format!(
                    ",\"phase\":\"{phase}\",\"elapsed_us\":{elapsed_us}"
                ));
            }
        }
        out.push('}');
        out
    }
}

/// Appends the `"rid"` field when the event is attributed to a request.
fn push_rid(out: &mut String, rid: u64) {
    if rid != 0 {
        out.push_str(&format!(",\"rid\":\"{rid:016x}\""));
    }
}

/// Renders a finite f64 so it round-trips through JSON number parsers;
/// non-finite values (never produced by a valid schedule, but a trace must
/// not panic) fall back to null.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Destination for [`TraceEvent`]s.
///
/// Implementations must be thread-safe: the service's worker pool shares
/// one sink. Emitters are required to check [`TraceSink::enabled`] before
/// doing any per-event work (clock reads, formatting), which is what makes
/// disabled tracing cost a single branch.
pub trait TraceSink: Send + Sync {
    /// Whether events will be kept. Emitters skip all work when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. May drop (ring overflow) but must not block
    /// beyond a short critical section.
    fn emit(&self, event: TraceEvent);
}

/// The always-disabled sink; the default for every untraced entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: TraceEvent) {}
}

/// A sink that keeps every event, in order. For tests and one-shot CLI
/// runs where the event count is bounded by the instance size.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl VecSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace sink poisoned"))
    }

    /// Clones everything recorded so far, leaving the sink intact.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }
}

impl TraceSink for VecSink {
    fn emit(&self, event: TraceEvent) {
        self.events.lock().expect("trace sink poisoned").push(event);
    }
}

/// A bounded ring of recent events for long-running daemons.
///
/// Writers claim a slot with one atomic `fetch_add` on the head counter —
/// so writers never contend on a shared lock — then copy the event into
/// that slot under the slot's own mutex (uncontended unless the ring wraps
/// onto a concurrent reader or a writer lapped a full revolution). Old
/// events are overwritten once the ring is full; [`TraceBuffer::snapshot`]
/// returns the survivors in emission order. Capacity 0 disables the sink
/// entirely ([`TraceSink::enabled`] returns `false`).
#[derive(Debug)]
pub struct TraceBuffer {
    head: AtomicU64,
    slots: Vec<Mutex<Option<(u64, TraceEvent)>>>,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` events (0 disables tracing).
    pub fn new(capacity: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Total number of events ever emitted (including overwritten ones).
    pub fn emitted(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The surviving events with their sequence numbers, oldest first.
    pub fn snapshot(&self) -> Vec<(u64, TraceEvent)> {
        let mut out: Vec<(u64, TraceEvent)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("trace slot poisoned").clone())
            .collect();
        out.sort_by_key(|(seq, _)| *seq);
        out
    }

    /// The surviving events stamped with the given correlation id, oldest
    /// first — the `TRACE {"rid":...}` filter. Events overwritten by the
    /// ring are gone; what survives for a rid is returned complete and in
    /// emission order.
    pub fn snapshot_for(&self, rid: u64) -> Vec<(u64, TraceEvent)> {
        let mut out: Vec<(u64, TraceEvent)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("trace slot poisoned").clone())
            .filter(|(_, event)| event.rid() == Some(rid))
            .collect();
        out.sort_by_key(|(seq, _)| *seq);
        out
    }

    /// Drops all recorded events (the sequence counter keeps advancing).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().expect("trace slot poisoned") = None;
        }
    }
}

impl TraceSink for TraceBuffer {
    fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    fn emit(&self, event: TraceEvent) {
        if self.slots.is_empty() {
            return;
        }
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("trace slot poisoned") = Some((seq, event));
    }
}

/// A scoped timer that emits [`TraceEvent::Span`] when dropped.
///
/// Construction checks the sink once: with a disabled sink no clock is
/// read and the drop is a no-op, preserving the zero-cost contract.
pub struct SpanTimer<'a> {
    sink: &'a dyn TraceSink,
    phase: &'static str,
    rid: u64,
    start: Option<Instant>,
}

impl<'a> SpanTimer<'a> {
    /// Opens an unattributed span named `phase` against `sink`.
    pub fn start(sink: &'a dyn TraceSink, phase: &'static str) -> Self {
        Self::start_for(sink, phase, 0)
    }

    /// Opens a span named `phase` correlated to request `rid` (0 for
    /// unattributed — equivalent to [`start`](Self::start)).
    pub fn start_for(sink: &'a dyn TraceSink, phase: &'static str, rid: u64) -> Self {
        let start = sink.enabled().then(Instant::now);
        Self {
            sink,
            phase,
            rid,
            start,
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.sink.emit(TraceEvent::Span {
                rid: self.rid,
                phase: self.phase,
                elapsed_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            });
        }
    }
}

impl std::fmt::Debug for SpanTimer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanTimer")
            .field("phase", &self.phase)
            .field("active", &self.start.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
        sink.emit(TraceEvent::TaskCommitted {
            task: 0,
            machine: 0,
        });
    }

    #[test]
    fn vec_sink_preserves_order() {
        let sink = VecSink::new();
        for task in 0..5 {
            sink.emit(TraceEvent::TaskCommitted { task, machine: 0 });
        }
        let events = sink.take();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(
                *e,
                TraceEvent::TaskCommitted {
                    task: i as u32,
                    machine: 0
                }
            );
        }
        assert!(sink.take().is_empty());
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let ring = TraceBuffer::new(4);
        for task in 0..10u32 {
            ring.emit(TraceEvent::TaskCommitted { task, machine: 0 });
        }
        assert_eq!(ring.emitted(), 10);
        let survivors = ring.snapshot();
        assert_eq!(survivors.len(), 4);
        let tasks: Vec<u32> = survivors
            .iter()
            .map(|(_, e)| match e {
                TraceEvent::TaskCommitted { task, .. } => *task,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(tasks, vec![6, 7, 8, 9]);
        assert_eq!(survivors[0].0, 6);
    }

    #[test]
    fn zero_capacity_ring_is_disabled() {
        let ring = TraceBuffer::new(0);
        assert!(!ring.enabled());
        ring.emit(TraceEvent::CacheHit { digest: 1, rid: 0 });
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.emitted(), 0);
    }

    #[test]
    fn rid_filter_returns_only_that_requests_events_in_order() {
        let ring = TraceBuffer::new(32);
        for rid in [7u64, 9, 7, 0, 9, 7] {
            ring.emit(TraceEvent::Span {
                rid,
                phase: "queue_wait",
                elapsed_us: rid,
            });
        }
        ring.emit(TraceEvent::WorkerServe {
            rid: 7,
            queue_wait_us: 1,
            map_us: 2,
        });
        let seven = ring.snapshot_for(7);
        assert_eq!(seven.len(), 4);
        assert!(seven.windows(2).all(|w| w[0].0 < w[1].0), "emission order");
        assert!(seven.iter().all(|(_, e)| e.rid() == Some(7)));
        // rid 0 means unattributed: never returned by a filter.
        assert!(ring.snapshot_for(0).is_empty());
        assert_eq!(ring.snapshot_for(9).len(), 2);
        assert!(ring.snapshot_for(12345).is_empty());
    }

    #[test]
    fn rid_filter_is_complete_and_ordered_under_concurrent_wrap() {
        // A small ring wrapping many times while 4 writers interleave.
        // Afterwards, one more full request timeline is written for a
        // target rid; a filtered snapshot must return that surviving
        // timeline complete and in emission order even though the ring
        // wrapped mid-test.
        let ring = Arc::new(TraceBuffer::new(64));
        let writers: Vec<_> = (1..=4u64)
            .map(|rid| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        ring.emit(TraceEvent::Span {
                            rid,
                            phase: "kernel_map",
                            elapsed_us: i,
                        });
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        assert!(ring.emitted() > 64, "the ring must have wrapped");

        let target = 0xabcdu64;
        for phase in ["queue_wait", "kernel_map", "serialize"] {
            ring.emit(TraceEvent::Span {
                rid: target,
                phase,
                elapsed_us: 1,
            });
        }
        let events = ring.snapshot_for(target);
        let phases: Vec<&str> = events
            .iter()
            .map(|(_, e)| match e {
                TraceEvent::Span { phase, .. } => *phase,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(phases, ["queue_wait", "kernel_map", "serialize"]);
        assert!(events.windows(2).all(|w| w[0].0 < w[1].0));
        // Every filtered event belongs to the target; the bulk writers'
        // events are still present in the unfiltered snapshot.
        assert!(ring.snapshot().len() == 64);
    }

    #[test]
    fn concurrent_ring_writes_keep_every_sequence_unique() {
        let ring = Arc::new(TraceBuffer::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        ring.emit(TraceEvent::TaskCommitted {
                            task: t * 100 + i,
                            machine: t,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.emitted(), 400);
        let survivors = ring.snapshot();
        assert_eq!(survivors.len(), 64);
        let mut seqs: Vec<u64> = survivors.iter().map(|(s, _)| *s).collect();
        let unique_before = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), unique_before, "sequence numbers must be unique");
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "snapshot sorted by seq"
        );
    }

    #[test]
    fn span_timer_emits_on_drop_only_when_enabled() {
        let sink = VecSink::new();
        {
            let _span = SpanTimer::start(&sink, "map");
        }
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], TraceEvent::Span { phase: "map", .. }));

        let null = NullSink;
        {
            let span = SpanTimer::start(&null, "map");
            assert!(
                span.start.is_none(),
                "no clock read against a disabled sink"
            );
        }
    }

    #[test]
    fn json_lines_are_well_formed() {
        let events = [
            TraceEvent::RoundStart {
                round: 0,
                machines: 8,
                tasks: 16,
            },
            TraceEvent::RoundEnd {
                round: 0,
                makespan_machine: 3,
                makespan: 45.5,
                balance_index: 0.75,
            },
            TraceEvent::MachineFrozen {
                round: 0,
                machine: 3,
                finish: 45.5,
            },
            TraceEvent::FinishDelta {
                machine: 1,
                original: 30.0,
                final_finish: 28.0,
            },
            TraceEvent::KernelPhases {
                round: 1,
                scan_us: 10,
                commit_us: 5,
                invalidate_us: 2,
            },
            TraceEvent::TaskCommitted {
                task: 7,
                machine: 2,
            },
            TraceEvent::CacheHit {
                digest: 0xdead_beef_0123_4567,
                rid: 0x1234,
            },
            TraceEvent::WorkerServe {
                rid: 0,
                queue_wait_us: 12,
                map_us: 340,
            },
            TraceEvent::Span {
                rid: 0x1234,
                phase: "serialize",
                elapsed_us: 9,
            },
        ];
        for (seq, event) in events.iter().enumerate() {
            let line = event.to_json_line(seq as u64);
            assert!(line.starts_with(&format!("{{\"seq\":{seq},\"event\":\"")));
            assert!(line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(!line.contains('\n'));
            assert!(line.contains(event.kind()));
        }
        assert!(events[6]
            .to_json_line(0)
            .contains("\"digest\":\"deadbeef01234567\""));
        // rid renders as a zero-padded hex string on attributed events and
        // is omitted entirely on unattributed ones (byte-stable v1 lines).
        assert!(events[6]
            .to_json_line(0)
            .contains("\"rid\":\"0000000000001234\""));
        assert!(!events[7].to_json_line(0).contains("rid"));
        assert_eq!(events[6].rid(), Some(0x1234));
        assert_eq!(events[7].rid(), None);
        assert_eq!(events[5].rid(), None, "kernel events carry no rid");
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let line = TraceEvent::RoundEnd {
            round: 0,
            makespan_machine: 0,
            makespan: f64::NAN,
            balance_index: f64::INFINITY,
        }
        .to_json_line(0);
        assert!(line.contains("\"makespan\":null"));
        assert!(line.contains("\"balance_index\":null"));
    }
}
