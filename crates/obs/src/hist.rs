//! Lock-free fixed-bucket histograms with power-of-two bounds.
//!
//! Bucket `i` holds samples `<= 2^i` (in whatever unit the caller records —
//! the service records microseconds), so recording is one `fetch_add` with
//! no locks and no allocation. Percentiles interpolate linearly *within*
//! the bucket where the cumulative count crosses the rank: the crossing
//! bucket spans `(2^(i-1), 2^i]`, and the reported value is the rank's
//! linear position along that span. The last sample of a bucket still
//! reports the bucket's upper bound exactly, so a single-sample histogram
//! answers every rank with that sample's bucket bound — but a p95 that
//! lands early in a wide bucket no longer overshoots by up to 2× the way
//! a bare upper-bound readout does. Power-of-two buckets stay immune to
//! the reservoir-sampling bias a sampled exact-percentile sketch has
//! under bursty load.
//!
//! This is the `hcs-service` latency histogram generalized and promoted to
//! the shared observability crate: it now records arbitrary `u64` values
//! (not just `Duration`s), tracks the sample sum (required by the
//! Prometheus histogram exposition contract: `_bucket`/`_sum`/`_count`),
//! and rejects out-of-domain percentile ranks (`debug_assert` in debug
//! builds, clamp in release).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` holds samples `<= 2^i`.
pub const BUCKETS: usize = 27;

/// Lock-free fixed-bucket histogram; see the [module docs](self).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one raw sample value.
    pub fn record_value(&self, value: u64) {
        let bucket = (64 - value.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one latency sample, in microseconds.
    pub fn record(&self, latency: Duration) {
        self.record_value(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, or 0 with no samples.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `p`-th percentile, linearly interpolated within the bucket the
    /// rank falls in, or 0 with no samples.
    ///
    /// The crossing bucket `i` spans `(lo, hi] = (2^(i-1), 2^i]` (`(0, 1]`
    /// for bucket 0); the rank's position among the bucket's samples picks
    /// the value `lo + frac * (hi - lo)` where `frac` is the rank's
    /// in-bucket fraction. The *last* sample of a bucket has `frac = 1`
    /// and reports the bound `hi` exactly — so a single recorded sample
    /// makes `p = 50` (or any valid `p`) return that sample's bucket
    /// bound. Out-of-domain ranks are a caller bug — `debug_assert`ed in
    /// debug builds and clamped into the domain in release builds
    /// (`p <= 0` behaves as the smallest positive rank, `p > 100` as 100).
    pub fn percentile(&self, p: f64) -> u64 {
        debug_assert!(
            p > 0.0 && p <= 100.0,
            "percentile rank {p} outside (0, 100]"
        );
        let p = if p > 100.0 { 100.0 } else { p };
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // max(1.0) also absorbs clamped p <= 0: the rank floor is the first
        // sample.
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if seen + in_bucket >= rank && in_bucket > 0 {
                let lo = if i == 0 { 0 } else { Self::bucket_bound(i - 1) };
                let hi = Self::bucket_bound(i);
                let frac = (rank - seen) as f64 / in_bucket as f64;
                return lo + (frac * (hi - lo) as f64).round() as u64;
            }
            seen += in_bucket;
        }
        self.max()
    }

    /// Adds every sample of `other` into `self` (bucket-wise, plus count,
    /// sum, and max). Both histograms may be live: each constituent is
    /// folded in with one relaxed atomic op, so a merge racing concurrent
    /// `record` calls yields *some* valid interleaving rather than a torn
    /// histogram. This is how a fleet client folds per-node latency
    /// distributions into one view.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Rebuilds a histogram from exposed parts — per-bucket counts (as
    /// from [`bucket_counts`](Self::bucket_counts), shorter slices are
    /// zero-extended, longer ones truncated), the sample sum, and the
    /// maximum. The count is the sum of the bucket counts. This is the
    /// wire-decoding constructor: a fleet client receives each node's
    /// bucket array in `STATS` and rebuilds a mergeable histogram from it.
    pub fn from_parts(counts: &[u64], sum: u64, max: u64) -> Histogram {
        let h = Histogram::new();
        let mut total = 0u64;
        for (i, &n) in counts.iter().take(BUCKETS).enumerate() {
            h.buckets[i].store(n, Ordering::Relaxed);
            total += n;
        }
        h.count.store(total, Ordering::Relaxed);
        h.sum.store(sum, Ordering::Relaxed);
        h.max.store(max, Ordering::Relaxed);
        h
    }

    /// The inclusive upper bound of bucket `i` (`2^i`).
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Per-bucket sample counts (not cumulative), for exposition.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            out[i] = b.load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket (2, 4]
        }
        h.record(Duration::from_millis(100)); // ~1e5 µs
        assert_eq!(h.count(), 100);
        // Rank 50 of 99 samples in the (2, 4] bucket interpolates to
        // 2 + round((50/99) * 2) = 3; the bucket's *last* rank still
        // reports the bound itself.
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(99.0), 4);
        assert!(h.percentile(100.0) >= 100_000 / 2);
        assert!(h.max() >= 100_000);
        assert_eq!(h.sum(), 99 * 3 + 100_000);
    }

    #[test]
    fn interpolation_splits_a_wide_bucket_by_rank() {
        // 100 samples all in the (16384, 32768] bucket: a bare upper-bound
        // readout reports 32768 for every rank (the coarseness this
        // interpolation exists to fix); the interpolated percentile walks
        // the span linearly instead.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record_value(20_000);
        }
        assert_eq!(h.percentile(25.0), 16_384 + 16_384 / 4);
        assert_eq!(h.percentile(50.0), 16_384 + 16_384 / 2);
        assert_eq!(h.percentile(100.0), 32_768);
    }

    #[test]
    fn interpolation_edge_cases_pin_bucket_boundaries() {
        // Two samples in one bucket: rank 1 is the midpoint, rank 2 the
        // bound — frac reaches exactly 1 on the bucket's last sample.
        let h = Histogram::new();
        h.record_value(3);
        h.record_value(3);
        assert_eq!(h.percentile(50.0), 3); // 2 + round(0.5 * 2)
        assert_eq!(h.percentile(100.0), 4);

        // The smallest recordable value (0 clamps to 1) lands in bucket 1,
        // which spans (1, 2]: its lone sample reports the bound 2.
        let h = Histogram::new();
        h.record_value(1);
        assert_eq!(h.percentile(50.0), 2);

        // Ranks that fall in a later bucket only count *that* bucket's
        // samples for the fraction, not the cumulative total.
        let h = Histogram::new();
        for _ in 0..9 {
            h.record_value(1);
        }
        h.record_value(1000); // alone in (512, 1024]
        assert_eq!(h.percentile(100.0), 1024, "lone sample -> its bound");
        assert_eq!(h.percentile(90.0), 2, "rank 9 is bucket 1's last sample");
    }

    #[test]
    fn merge_folds_buckets_counts_sum_and_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 100, 40_000] {
            a.record_value(v);
        }
        for v in [5u64, 7_000_000] {
            b.record_value(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 3 + 100 + 40_000 + 5 + 7_000_000);
        assert_eq!(a.max(), 7_000_000);
        assert_eq!(a.bucket_counts().iter().sum::<u64>(), 5);
        // The merged distribution answers percentiles over both sources.
        assert!(a.percentile(100.0) >= 4_194_304, "p100 sees b's tail");
    }

    #[test]
    fn from_parts_round_trips_bucket_counts() {
        let h = Histogram::new();
        for v in [1u64, 3, 900, 65_000, 65_000] {
            h.record_value(v);
        }
        let rebuilt = Histogram::from_parts(&h.bucket_counts(), h.sum(), h.max());
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.sum(), h.sum());
        assert_eq!(rebuilt.max(), h.max());
        assert_eq!(rebuilt.bucket_counts(), h.bucket_counts());
        for p in [50.0, 95.0, 99.0, 100.0] {
            assert_eq!(rebuilt.percentile(p), h.percentile(p), "p{p}");
        }
        // Short slices zero-extend; long ones truncate.
        let short = Histogram::from_parts(&[2, 1], 4, 2);
        assert_eq!(short.count(), 3);
        let long = Histogram::from_parts(&vec![1u64; BUCKETS + 5], 0, 1);
        assert_eq!(long.count(), BUCKETS as u64);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_percentile_returns_its_bucket_bound() {
        // The edge case the percentile contract pins down: with exactly one
        // sample, every valid rank — p50 included — must resolve to that
        // sample's bucket bound, not 0 or the histogram max.
        let h = Histogram::new();
        h.record_value(3); // bucket 2, bound 4
        assert_eq!(h.percentile(50.0), 4);
        assert_eq!(h.percentile(0.1), 4);
        assert_eq!(h.percentile(100.0), 4);
    }

    #[test]
    fn sub_unit_sample_lands_in_first_buckets() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(10)); // 0 µs -> clamped to bucket 1
        assert_eq!(h.percentile(50.0), 2);
        assert_eq!(h.count(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside (0, 100]")]
    fn out_of_domain_percentile_is_rejected_in_debug() {
        let h = Histogram::new();
        h.record_value(1);
        let _ = h.percentile(150.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside (0, 100]")]
    fn zero_percentile_is_rejected_in_debug() {
        let h = Histogram::new();
        h.record_value(1);
        let _ = h.percentile(0.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn out_of_domain_percentile_is_clamped_in_release() {
        let h = Histogram::new();
        h.record_value(3); // bucket bound 4
        h.record_value(1_000_000); // bucket bound 2^20
        assert_eq!(h.percentile(150.0), h.percentile(100.0));
        assert_eq!(h.percentile(0.0), h.percentile(1.0));
        assert_eq!(h.percentile(-5.0), 4);
    }

    #[test]
    fn bucket_counts_cover_all_samples() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 1024, u64::MAX] {
            h.record_value(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), 5);
        // u64::MAX clamps into the last bucket.
        assert_eq!(counts[BUCKETS - 1], 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 1..=1000u64 {
                        h.record_value(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4 * 1000 * 1001 / 2);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4000);
    }
}
