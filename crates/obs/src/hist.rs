//! Lock-free fixed-bucket histograms with power-of-two bounds.
//!
//! Bucket `i` holds samples `<= 2^i` (in whatever unit the caller records —
//! the service records microseconds), so recording is one `fetch_add` with
//! no locks and no allocation; percentiles are read out as the upper bound
//! of the bucket where the cumulative count crosses the rank. That
//! quantizes p50/p95/p99 to 2× resolution — plenty for a load shedder's
//! dashboard, and immune to the reservoir-sampling bias a sampled
//! exact-percentile sketch has under bursty load.
//!
//! This is the `hcs-service` latency histogram generalized and promoted to
//! the shared observability crate: it now records arbitrary `u64` values
//! (not just `Duration`s), tracks the sample sum (required by the
//! Prometheus histogram exposition contract: `_bucket`/`_sum`/`_count`),
//! and rejects out-of-domain percentile ranks (`debug_assert` in debug
//! builds, clamp in release).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` holds samples `<= 2^i`.
pub const BUCKETS: usize = 27;

/// Lock-free fixed-bucket histogram; see the [module docs](self).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one raw sample value.
    pub fn record_value(&self, value: u64) {
        let bucket = (64 - value.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one latency sample, in microseconds.
    pub fn record(&self, latency: Duration) {
        self.record_value(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample, or 0 with no samples.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `p`-th percentile, or 0
    /// with no samples.
    ///
    /// `p` must lie in `(0, 100]`: a single recorded sample makes `p = 50`
    /// (or any valid `p`) return that sample's bucket bound. Out-of-domain
    /// ranks are a caller bug — `debug_assert`ed in debug builds and
    /// clamped into the domain in release builds (`p <= 0` behaves as the
    /// smallest positive rank, `p > 100` as 100).
    pub fn percentile(&self, p: f64) -> u64 {
        debug_assert!(
            p > 0.0 && p <= 100.0,
            "percentile rank {p} outside (0, 100]"
        );
        let p = if p > 100.0 { 100.0 } else { p };
        let total = self.count();
        if total == 0 {
            return 0;
        }
        // max(1.0) also absorbs clamped p <= 0: the rank floor is the first
        // sample.
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_bound(i);
            }
        }
        self.max()
    }

    /// The inclusive upper bound of bucket `i` (`2^i`).
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i
    }

    /// Per-bucket sample counts (not cumulative), for exposition.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            out[i] = b.load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket <= 4
        }
        h.record(Duration::from_millis(100)); // ~1e5 µs
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50.0), 4);
        assert_eq!(h.percentile(99.0), 4);
        assert!(h.percentile(100.0) >= 100_000 / 2);
        assert!(h.max() >= 100_000);
        assert_eq!(h.sum(), 99 * 3 + 100_000);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_percentile_returns_its_bucket_bound() {
        // The edge case the percentile contract pins down: with exactly one
        // sample, every valid rank — p50 included — must resolve to that
        // sample's bucket bound, not 0 or the histogram max.
        let h = Histogram::new();
        h.record_value(3); // bucket 2, bound 4
        assert_eq!(h.percentile(50.0), 4);
        assert_eq!(h.percentile(0.1), 4);
        assert_eq!(h.percentile(100.0), 4);
    }

    #[test]
    fn sub_unit_sample_lands_in_first_buckets() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(10)); // 0 µs -> clamped to bucket 1
        assert_eq!(h.percentile(50.0), 2);
        assert_eq!(h.count(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside (0, 100]")]
    fn out_of_domain_percentile_is_rejected_in_debug() {
        let h = Histogram::new();
        h.record_value(1);
        let _ = h.percentile(150.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside (0, 100]")]
    fn zero_percentile_is_rejected_in_debug() {
        let h = Histogram::new();
        h.record_value(1);
        let _ = h.percentile(0.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn out_of_domain_percentile_is_clamped_in_release() {
        let h = Histogram::new();
        h.record_value(3); // bucket bound 4
        h.record_value(1_000_000); // bucket bound 2^20
        assert_eq!(h.percentile(150.0), h.percentile(100.0));
        assert_eq!(h.percentile(0.0), h.percentile(1.0));
        assert_eq!(h.percentile(-5.0), 4);
    }

    #[test]
    fn bucket_counts_cover_all_samples() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 1024, u64::MAX] {
            h.record_value(v);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), 5);
        // u64::MAX clamps into the last bucket.
        assert_eq!(counts[BUCKETS - 1], 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 1..=1000u64 {
                        h.record_value(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4 * 1000 * 1001 / 2);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4000);
    }
}
