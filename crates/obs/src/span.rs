//! Request correlation: deterministic request ids and per-request phase
//! timelines.
//!
//! The trace ring ([`crate::TraceBuffer`]) answers "what happened
//! recently"; this module answers "what happened to *this request*". A
//! [`RequestId`] is a 64-bit identifier a client derives deterministically
//! from a seed and a counter (splitmix64, the same finalizer the suite
//! uses for jitter and fault injection), carried end to end on the wire
//! as a 16-hex-digit string — the rendering [`crate::TraceEvent`] already
//! uses for cache digests, chosen because the wire JSON stores numbers as
//! `f64` and would corrupt ids above 2^53. A [`SpanStore`] is a bounded,
//! rid-indexed table of [`SpanRecord`] phase timelines: the daemon records
//! one [`PhaseSpan`] per serving phase (queue wait, cache probe, kernel
//! map, reply serialization) under the request's rid, and the `TRACE`
//! verb reads the record back even after the shared trace ring has
//! wrapped past the request's events.

use std::fmt;
use std::sync::Mutex;

/// A 64-bit end-to-end request identifier.
///
/// Ids are either client-derived ([`RequestId::derive`] — deterministic,
/// so a test or a bench can predict every rid it will issue) or
/// server-assigned when a request arrives without one (v1 lines). On the
/// wire a rid is a 16-hex-digit string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RequestId(pub u64);

impl RequestId {
    /// Derives the `counter`-th rid of a client stream seeded with
    /// `seed`: the splitmix64 finalizer over the golden-ratio stride, so
    /// consecutive counters yield well-mixed, collision-resistant ids and
    /// two streams with different seeds do not overlap in practice.
    pub fn derive(seed: u64, counter: u64) -> RequestId {
        RequestId(splitmix64(
            seed.wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ))
    }

    /// The wire spelling: 16 lowercase hex digits, zero-padded.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the wire spelling (1–16 hex digits, case-insensitive).
    pub fn from_hex(text: &str) -> Option<RequestId> {
        if text.is_empty() || text.len() > 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok().map(RequestId)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The splitmix64 finalizer (public here so rid derivation, jitter, and
/// fault injection share one spelling of the same mix).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One timed phase of a request's lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (`"queue_wait"`, `"cache_probe"`, `"kernel_map"`,
    /// `"serialize"`, …).
    pub phase: &'static str,
    /// Elapsed time in microseconds.
    pub elapsed_us: u64,
}

/// A request's phase timeline: the rid plus its phases in the order they
/// were recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request id the phases belong to.
    pub rid: u64,
    /// Recorded phases, in recording order.
    pub phases: Vec<PhaseSpan>,
}

/// A bounded table of [`SpanRecord`]s indexed by rid.
///
/// Capacity-many slots; a rid's slot is `splitmix64(rid) % capacity`.
/// Recording a phase appends to the slot's record when it already belongs
/// to the same rid and *evicts* it (starts a fresh record) when a
/// different rid hashes there — the bounded-memory analogue of the trace
/// ring's overwrite-oldest policy, except eviction is per colliding rid
/// rather than global, so a record survives as long as nothing collides
/// with its slot. Capacity 0 disables the store entirely (every call is a
/// no-op, [`get`](Self::get) always misses).
#[derive(Debug)]
pub struct SpanStore {
    slots: Vec<Mutex<Option<SpanRecord>>>,
}

impl SpanStore {
    /// A store with `capacity` slots (0 disables).
    pub fn new(capacity: usize) -> SpanStore {
        SpanStore {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Whether the store records anything at all.
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, rid: u64) -> &Mutex<Option<SpanRecord>> {
        &self.slots[(splitmix64(rid) % self.slots.len() as u64) as usize]
    }

    /// Appends one phase to `rid`'s record, creating it (and evicting any
    /// colliding rid's record) if absent.
    pub fn record(&self, rid: u64, phase: &'static str, elapsed_us: u64) {
        if self.slots.is_empty() {
            return;
        }
        let mut slot = self.slot(rid).lock().expect("span slot poisoned");
        match slot.as_mut() {
            Some(record) if record.rid == rid => {
                record.phases.push(PhaseSpan { phase, elapsed_us });
            }
            _ => {
                *slot = Some(SpanRecord {
                    rid,
                    phases: vec![PhaseSpan { phase, elapsed_us }],
                });
            }
        }
    }

    /// The record for `rid`, if it is still resident.
    pub fn get(&self, rid: u64) -> Option<SpanRecord> {
        if self.slots.is_empty() {
            return None;
        }
        let slot = self.slot(rid).lock().expect("span slot poisoned");
        slot.as_ref().filter(|r| r.rid == rid).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn derive_is_deterministic_and_seed_separated() {
        let a = RequestId::derive(7, 0);
        assert_eq!(a, RequestId::derive(7, 0));
        assert_ne!(a, RequestId::derive(7, 1));
        assert_ne!(a, RequestId::derive(8, 0));
        // A short stream has no collisions.
        let mut seen = std::collections::HashSet::new();
        for c in 0..10_000u64 {
            assert!(seen.insert(RequestId::derive(42, c).0), "collision at {c}");
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let rid = RequestId(0x9E37_79B9_7F4A_7C15);
        assert_eq!(rid.to_hex(), "9e3779b97f4a7c15");
        assert_eq!(RequestId::from_hex(&rid.to_hex()), Some(rid));
        assert_eq!(RequestId::from_hex("2A"), Some(RequestId(42)));
        assert_eq!(RequestId::from_hex(""), None);
        assert_eq!(RequestId::from_hex("12345678901234567"), None);
        assert_eq!(RequestId::from_hex("not-hex"), None);
        assert_eq!(format!("{}", RequestId(1)), "0000000000000001");
    }

    #[test]
    fn store_appends_phases_in_order_per_rid() {
        let store = SpanStore::new(64);
        store.record(1, "queue_wait", 10);
        store.record(1, "kernel_map", 20);
        store.record(1, "serialize", 3);
        let record = store.get(1).expect("resident");
        assert_eq!(record.rid, 1);
        let phases: Vec<&str> = record.phases.iter().map(|p| p.phase).collect();
        assert_eq!(phases, ["queue_wait", "kernel_map", "serialize"]);
        assert_eq!(record.phases[1].elapsed_us, 20);
        assert_eq!(store.get(2), None);
    }

    #[test]
    fn colliding_rid_evicts_the_older_record() {
        // Capacity 1: every rid shares the slot, so each new rid evicts
        // the previous record wholesale.
        let store = SpanStore::new(1);
        store.record(10, "queue_wait", 1);
        store.record(11, "queue_wait", 2);
        assert_eq!(store.get(10), None, "evicted by the collision");
        let survivor = store.get(11).expect("latest rid wins");
        assert_eq!(survivor.phases.len(), 1);
        // The survivor keeps appending cleanly after the eviction.
        store.record(11, "serialize", 5);
        assert_eq!(store.get(11).unwrap().phases.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_the_store() {
        let store = SpanStore::new(0);
        assert!(!store.enabled());
        store.record(1, "queue_wait", 1);
        assert_eq!(store.get(1), None);
    }

    #[test]
    fn concurrent_writers_keep_each_rid_complete_and_ordered() {
        // 8 writers, each its own rid, interleaved with a churn writer
        // cycling through many other rids (forcing evictions elsewhere in
        // the table). Every surviving rid's record must hold exactly its
        // own phases, in recording order. The table is sized so a churn
        // collision with a writer slot is possible but rare (~22% per
        // writer), keeping the survivors assertion robust.
        let store = Arc::new(SpanStore::new(8192));
        let phases: [&'static str; 4] = ["queue_wait", "cache_probe", "kernel_map", "serialize"];
        let writers: Vec<_> = (0..8u64)
            .map(|w| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let rid = RequestId::derive(999, w).0;
                    for _ in 0..50u64 {
                        for (i, phase) in phases.iter().enumerate() {
                            store.record(rid, phase, w * 100 + i as u64);
                        }
                    }
                })
            })
            .collect();
        let churn = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for c in 0..2000u64 {
                    store.record(RequestId::derive(31337, c).0, "queue_wait", c);
                }
            })
        };
        for t in writers {
            t.join().unwrap();
        }
        churn.join().unwrap();

        // A churn rid may collide with a writer's slot, evicting its
        // record mid-stream; the survivor's record is then a *contiguous
        // window* of the writer's phase stream. The invariant under
        // concurrency is: never torn, never reordered, every span's
        // payload matching its phase.
        let mut survivors = 0;
        for w in 0..8u64 {
            let rid = RequestId::derive(999, w).0;
            let Some(record) = store.get(rid) else {
                continue; // fully evicted by a colliding churn rid — allowed
            };
            survivors += 1;
            assert_eq!(record.rid, rid);
            assert!(!record.phases.is_empty());
            let offset = phases
                .iter()
                .position(|p| *p == record.phases[0].phase)
                .expect("a phase this writer emits");
            for (i, span) in record.phases.iter().enumerate() {
                let k = (offset + i) % phases.len();
                assert_eq!(span.phase, phases[k], "order broken at {i}");
                assert_eq!(span.elapsed_us, w * 100 + k as u64, "payload torn");
            }
        }
        assert!(survivors > 0, "every writer rid was evicted — vacuous run");
    }
}
