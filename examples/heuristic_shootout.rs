//! Compares all ten heuristics (nine greedy + Genitor) across the twelve
//! Braun workload classes: single-mapping makespan and what the iterative
//! technique does to the average machine finishing time.
//!
//! ```text
//! cargo run --release --example heuristic_shootout
//! ```

use nonmakespan::analysis::OnlineStats;
use nonmakespan::core::iterative;
use nonmakespan::etcgen::braun_classes;
use nonmakespan::genitor::{Genitor, GenitorConfig};
use nonmakespan::prelude::*;

const N_TASKS: usize = 48;
const N_MACHINES: usize = 6;
const TRIALS: u64 = 5;

fn main() {
    let classes = braun_classes(N_TASKS, N_MACHINES);
    println!("{N_TASKS} tasks x {N_MACHINES} machines, {TRIALS} trials per class, 12 classes\n");
    println!(
        "{:<11} {:>16} {:>22} {:>14}",
        "heuristic", "mean makespan", "mean finish reduction%", "increases%"
    );

    let mut names: Vec<&str> = all_heuristics().iter().map(|h| h.name()).collect();
    names.push("Genitor");

    for name in names {
        let mut makespans = OnlineStats::new();
        let mut reductions = OnlineStats::new();
        let mut increases = OnlineStats::new();
        for spec in &classes {
            for seed in 0..TRIALS {
                let scenario = Scenario::with_zero_ready(spec.generate(seed));
                let mut h: Box<dyn Heuristic> = if name == "Genitor" {
                    Box::new(Genitor::with_config(
                        seed,
                        GenitorConfig {
                            pop_size: 40,
                            max_steps: 2_000,
                            stall_steps: 400,
                            ..Default::default()
                        },
                    ))
                } else {
                    nonmakespan::heuristics::by_name(name).expect("known name")
                };
                let outcome = iterative::IterativeRun::new(&mut *h, &scenario)
                    .execute()
                    .unwrap();
                makespans.push(outcome.original_makespan().get());
                let deltas = outcome.deltas();
                let orig: f64 =
                    deltas.iter().map(|&(_, o, _)| o.get()).sum::<f64>() / deltas.len() as f64;
                let fin: f64 =
                    deltas.iter().map(|&(_, _, f)| f.get()).sum::<f64>() / deltas.len() as f64;
                reductions.push(if orig > 0.0 {
                    (orig - fin) / orig * 100.0
                } else {
                    0.0
                });
                increases.push(f64::from(u8::from(outcome.makespan_increased())));
            }
        }
        println!(
            "{:<11} {:>16.0} {:>22.2} {:>14.1}",
            name,
            makespans.mean(),
            reductions.mean(),
            increases.mean() * 100.0
        );
    }

    println!(
        "\nReading guide: lower makespan = better single mapping; higher finish\n\
         reduction = the iterative technique recovered more machine time;\n\
         increases% > 0 marks heuristics where the technique can backfire."
    );
}
