//! The paper's motivating scenario, end to end: an off-line-mapped first
//! wave of known tasks, then a second wave of unplanned tasks that lands
//! on whatever availability the first wave left.
//!
//! ```text
//! cargo run --release --example production_pipeline
//! ```

use nonmakespan::core::{IterativeConfig, Time};
use nonmakespan::prelude::*;
use nonmakespan::sim::production::{self, ProductionScenario};

fn main() {
    // Wave 1: a 32-task inconsistent high/high Braun-class workload.
    let wave1_spec = EtcSpec::braun(
        32,
        6,
        Consistency::Inconsistent,
        Heterogeneity::Hi,
        Heterogeneity::Hi,
    );
    // Wave 2: eight unplanned tasks from the same class.
    let wave2_spec = EtcSpec {
        n_tasks: 8,
        ..wave1_spec
    };

    let scenario = ProductionScenario::new(
        Scenario::with_zero_ready(wave1_spec.generate(11)),
        wave2_spec.generate(99),
        Time::ZERO,
    );

    println!(
        "wave 1: {} tasks, wave 2: {} tasks, {} machines\n",
        32, 8, 6
    );
    println!(
        "{:<11} {:>14} {:>14} {:>12}",
        "heuristic", "wave2 mean CT", "wave2 makespan", "gain"
    );
    for h in all_heuristics() {
        let mut h = h;
        let mut tb = TieBreaker::Deterministic;
        let out = production::run(&scenario, &mut *h, &mut tb, IterativeConfig::default());
        println!(
            "{:<11} {:>6.1} -> {:<6.1} {:>6.1} -> {:<6.1} {:>+10.1}",
            h.name(),
            out.wave2_original.mean_completion.get(),
            out.wave2_iterative.mean_completion.get(),
            out.wave2_original.makespan.get(),
            out.wave2_iterative.makespan.get(),
            out.mean_completion_gain(),
        );
    }
    println!(
        "\nA positive gain means the iterative technique freed machines earlier\n\
         for the second wave; Min-Min/MCT/MET show 0.0 because their mappings\n\
         are invariant under deterministic ties (the paper's theorems)."
    );
}
