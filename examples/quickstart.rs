//! Quickstart: map a small workload, run the iterative technique, inspect
//! what it did to each machine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nonmakespan::prelude::*;

fn main() {
    // A 6-task, 3-machine heterogeneous suite. Rows are tasks, columns are
    // machines; entry (t, m) is the estimated time to compute t on m.
    let etc = EtcMatrix::from_rows(&[
        vec![4.0, 7.0, 12.0],
        vec![6.0, 3.0, 9.0],
        vec![10.0, 5.0, 2.0],
        vec![3.0, 8.0, 6.0],
        vec![7.0, 4.0, 5.0],
        vec![5.0, 9.0, 4.0],
    ])
    .expect("valid matrix");
    let scenario = Scenario::with_zero_ready(etc);

    // Map it with Min-Min (the paper's flagship greedy heuristic).
    let mut heuristic = MinMin;
    let outcome = iterative::IterativeRun::new(&mut heuristic, &scenario)
        .execute()
        .expect("Min-Min upholds the mapping contract");

    println!("rounds executed: {}", outcome.rounds.len());
    println!(
        "original makespan: {}   final makespan: {}",
        outcome.original_makespan(),
        outcome.final_makespan()
    );

    println!("\nper-machine finishing times (original -> after the technique):");
    for (machine, original, fin) in outcome.deltas() {
        let verdict = if fin < original {
            "improved"
        } else if fin > original {
            "worsened"
        } else {
            "unchanged"
        };
        println!("  {machine}: {original} -> {fin}  ({verdict})");
    }

    // Theorem 3.2.1: with deterministic ties Min-Min never changes, so
    // every machine reads "unchanged".
    assert!(outcome.mappings_identical());

    // Now the same scenario through the Sufferage heuristic — the paper
    // shows Sufferage *can* change (for better or worse) across
    // iterations even with deterministic ties.
    let outcome = iterative::IterativeRun::new(&mut Sufferage, &scenario)
        .execute()
        .expect("Sufferage upholds the mapping contract");
    println!(
        "\nSufferage: original {} -> final {}",
        outcome.original_makespan(),
        outcome.final_makespan()
    );
    let (better, worse) = outcome.improvement_counts();
    println!("machines improved: {better}, worsened: {worse}");
}
