//! Shows why Genitor is the paper's safe heuristic for the iterative
//! technique: per-iteration seeding makes it monotone, and the same guard
//! bolted onto a greedy heuristic (`IterativeConfig::seed_guard`) buys the
//! same guarantee — the conclusion's suggestion, implemented.
//!
//! ```text
//! cargo run --release --example genitor_seeding
//! ```

use nonmakespan::core::{iterative, IterativeConfig};
use nonmakespan::prelude::*;

fn main() {
    // 64 tasks x 8 machines, inconsistent high/high — the class where
    // Sufferage backfires most often (see EXPERIMENTS.md, X1b).
    let spec = EtcSpec::braun(
        64,
        8,
        Consistency::Inconsistent,
        Heterogeneity::Hi,
        Heterogeneity::Hi,
    );

    println!("Sufferage under the iterative technique, 10 workloads:\n");
    println!(
        "{:<6} {:>12} {:>18} {:>18}",
        "seed", "original", "final (no guard)", "final (guard)"
    );
    let mut backfired = 0;
    for seed in 0..10u64 {
        let scenario = Scenario::with_zero_ready(spec.generate(seed));

        let plain = iterative::IterativeRun::new(&mut Sufferage, &scenario)
            .execute()
            .unwrap();

        let guarded = iterative::IterativeRun::new(&mut Sufferage, &scenario)
            .config(IterativeConfig {
                seed_guard: true,
                ..IterativeConfig::default()
            })
            .execute()
            .unwrap();

        if plain.makespan_increased() {
            backfired += 1;
        }
        assert!(!guarded.makespan_increased(), "guard must be monotone");
        println!(
            "{:<6} {:>12.0} {:>18.0} {:>18.0}",
            seed,
            plain.original_makespan().get(),
            plain.final_makespan().get(),
            guarded.final_makespan().get()
        );
    }
    println!("\nunguarded Sufferage backfired on {backfired}/10 workloads; the guard on 0/10.");

    // Genitor needs no guard: its own population seeding is the guard.
    println!("\nGenitor on the same workloads (seeding built in):");
    for seed in 0..3u64 {
        let scenario = Scenario::with_zero_ready(spec.generate(seed));
        let mut ga = Genitor::with_config(
            seed,
            GenitorConfig {
                pop_size: 50,
                max_steps: 3_000,
                stall_steps: 600,
                ..Default::default()
            },
        );
        let outcome = iterative::IterativeRun::new(&mut ga, &scenario)
            .execute()
            .unwrap();
        println!(
            "  seed {seed}: original {:.0} -> final {:.0} (increase: {})",
            outcome.original_makespan().get(),
            outcome.final_makespan().get(),
            outcome.makespan_increased()
        );
        assert!(!outcome.makespan_increased());
    }
}
