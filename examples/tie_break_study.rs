//! Replays the paper's six worked examples, showing how tie policy decides
//! whether the iterative technique helps or backfires.
//!
//! ```text
//! cargo run --example tie_break_study
//! ```

use nonmakespan::paper::{all_examples, verify_example};
use nonmakespan::prelude::*;

fn main() {
    println!(
        "{:<11} {:>10} {:>9} {:>9} {:>22}",
        "example", "orig ms", "final ms", "increase", "deterministic ties?"
    );
    for example in all_examples() {
        // Along the paper's tie-break path:
        let outcome = example.run();
        // And with purely deterministic ties:
        let det = example.run_deterministic();
        println!(
            "{:<11} {:>10} {:>9} {:>9} {:>22}",
            example.id,
            outcome.original_makespan().to_string(),
            outcome.final_makespan().to_string(),
            if outcome.makespan_increased() {
                "YES"
            } else {
                "no"
            },
            if det.makespan_increased() {
                "increases anyway"
            } else if det.mappings_identical() {
                "mapping invariant"
            } else {
                "changes, no increase"
            },
        );
        let report = verify_example(&example);
        assert!(report.all_ok(), "{} diverged from the paper", example.id);
    }

    println!(
        "\nMin-Min / MCT / MET only go wrong when ties are broken randomly \
         (their deterministic mappings are provably invariant); SWA, KPB and \
         Sufferage can increase the makespan even with deterministic ties."
    );

    // Demonstrate the random-tie pathology statistically on the Min-Min
    // example: how many random seeds increase the makespan?
    let example = nonmakespan::paper::examples::minmin_example();
    let scenario = example.scenario();
    let mut increases = 0u32;
    let trials = 200u64;
    for seed in 0..trials {
        let outcome = iterative::IterativeRun::new(&mut MinMin, &scenario)
            .tie_breaker(TieBreaker::random(seed))
            .execute()
            .unwrap();
        if outcome.makespan_increased() {
            increases += 1;
        }
    }
    println!(
        "\nMin-Min example under {trials} random tie seeds: {increases} runs \
         increased the makespan ({:.0}%).",
        100.0 * f64::from(increases) / trials as f64
    );
}
