//! The dynamic (on-line) setting SWA and K-Percent Best came from
//! (Maheswaran et al., the paper's ref [14]): tasks arrive over time and
//! are mapped the instant they arrive.
//!
//! ```text
//! cargo run --release --example dynamic_mapping
//! ```

use nonmakespan::core::{MachineId, TieBreaker, Time};
use nonmakespan::prelude::*;
use nonmakespan::sim::{ArrivalProcess, DynamicMapper, OnlinePolicy};

fn main() {
    let spec = EtcSpec::braun(
        48,
        6,
        Consistency::Inconsistent,
        Heterogeneity::Hi,
        Heterogeneity::Hi,
    );
    let etc = spec.generate(21);
    let machines: Vec<MachineId> = (0..6).map(MachineId).collect();

    // Poisson arrivals at a rate that keeps the suite moderately loaded.
    // With high machine heterogeneity the *best-machine* execution time is
    // what determines service capacity, so the rate is based on the mean
    // row minimum rather than the raw matrix mean.
    let mean_best: f64 = etc
        .tasks()
        .map(|t| {
            etc.machines()
                .map(|m| etc.get(t, m).get())
                .fold(f64::INFINITY, f64::min)
        })
        .sum::<f64>()
        / 48.0;
    let rate = 1.5 * 6.0 / mean_best;
    let arrivals = ArrivalProcess::Poisson { rate }.generate(48, 7);
    println!(
        "48 tasks arriving by Poisson process over ~{:.0} time units, 6 machines\n",
        arrivals.last().unwrap().0.get()
    );

    let policies = [
        ("MCT", OnlinePolicy::Mct),
        ("MET", OnlinePolicy::Met),
        ("OLB", OnlinePolicy::Olb),
        ("KPB-70", OnlinePolicy::Kpb { k_percent: 70.0 }),
        (
            "SWA",
            OnlinePolicy::Swa {
                lo: 1.0 / 3.0,
                hi: 0.49,
            },
        ),
    ];

    println!("{:<8} {:>12} {:>14}", "policy", "makespan", "mean task CT");
    let mut mct_makespan = None;
    for (name, policy) in policies {
        let mapper = DynamicMapper::new(machines.clone(), vec![Time::ZERO; machines.len()]);
        let mut tb = TieBreaker::Deterministic;
        let out = mapper.run_policy(&etc, &arrivals, policy, &mut tb);
        if name == "MCT" {
            mct_makespan = Some(out.makespan());
        }
        println!(
            "{:<8} {:>12.0} {:>14.0}",
            name,
            out.makespan().get(),
            out.mean_completion().get()
        );
    }

    println!(
        "\nExpected shape (Maheswaran et al.): KPB tracks MCT closely, SWA sits\n\
         between MCT and MET, MET floods the globally fastest machines, OLB\n\
         ignores heterogeneity. MCT's makespan here: {:.0}.",
        mct_makespan.expect("MCT ran").get()
    );
}
