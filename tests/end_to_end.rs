//! Cross-crate integration: workload generation → heuristics → iterative
//! technique → metrics → simulation, checked for internal consistency.

use nonmakespan::analysis::OutcomeMetrics;
use nonmakespan::core::{iterative, IterativeConfig, Scenario, TieBreaker, Time};
use nonmakespan::etcgen::{Consistency, EtcSpec, Heterogeneity};
use nonmakespan::heuristics::all_heuristics;
use nonmakespan::sim::production::{self, ProductionScenario};
use nonmakespan::sim::Gantt;

fn workload(seed: u64) -> Scenario {
    let spec = EtcSpec::braun(
        24,
        5,
        Consistency::SemiConsistent,
        Heterogeneity::Hi,
        Heterogeneity::Lo,
    );
    Scenario::with_zero_ready(spec.generate(seed))
}

#[test]
fn every_heuristic_survives_the_full_pipeline() {
    let scenario = workload(1);
    for mut h in all_heuristics() {
        let outcome = iterative::IterativeRun::new(&mut *h, &scenario)
            .execute()
            .unwrap();

        // Every machine gets exactly one final finishing time.
        assert_eq!(outcome.final_finish.len(), 5, "{}", h.name());

        // The frozen makespan machine of each round keeps its completion.
        for (i, round) in outcome.rounds.iter().enumerate() {
            let frozen_time = round.completion.get(round.makespan_machine);
            assert_eq!(round.makespan, frozen_time, "{} round {i}", h.name());
            if i + 1 < outcome.rounds.len() {
                assert_eq!(
                    outcome.final_finish_of(round.makespan_machine),
                    frozen_time,
                    "{} round {i}",
                    h.name()
                );
            }
        }

        // Metrics agree with the outcome's own accessors.
        let metrics = OutcomeMetrics::from_outcome(&outcome);
        assert_eq!(metrics.makespan_increased, outcome.makespan_increased());
        assert_eq!(metrics.rounds, outcome.rounds.len());
        let (better, worse) = outcome.improvement_counts();
        assert_eq!(metrics.machines_improved, better);
        assert_eq!(metrics.machines_worsened, worse);
    }
}

#[test]
fn completion_times_match_gantt_reconstruction() {
    let scenario = workload(2);
    for mut h in all_heuristics() {
        let outcome = iterative::IterativeRun::new(&mut *h, &scenario)
            .execute()
            .unwrap();
        let round = &outcome.rounds[0];
        let gantt = Gantt::from_mapping(
            &round.mapping,
            &scenario.etc,
            &scenario.initial_ready,
            &round.machines,
        );
        for &(machine, ct) in round.completion.pairs() {
            let finish = gantt.finish_of(machine).unwrap_or(Time::ZERO);
            assert_eq!(finish, ct, "{} machine {machine}", h.name());
        }
    }
}

#[test]
fn random_and_deterministic_policies_agree_on_tie_free_workloads() {
    // Continuous Braun workloads essentially never tie *on completion
    // times*, so the random policy must coincide with the deterministic
    // one — except for OLB, which compares bare ready times and therefore
    // genuinely ties on the all-zero initial state at the start of every
    // round.
    let scenario = workload(3);
    for mut h in all_heuristics() {
        if h.name() == "OLB" {
            continue;
        }
        let det = iterative::IterativeRun::new(&mut *h, &scenario)
            .execute()
            .unwrap();
        let mut h2 = nonmakespan::heuristics::by_name(h.name()).unwrap();
        let rand = iterative::IterativeRun::new(&mut *h2, &scenario)
            .tie_breaker(TieBreaker::random(7))
            .execute()
            .unwrap();
        assert_eq!(
            det.final_finish,
            rand.final_finish,
            "{}: policies diverged without ties",
            h.name()
        );
    }
}

#[test]
fn seed_guard_never_hurts_the_final_makespan() {
    for seed in 0..5u64 {
        let scenario = workload(seed);
        for mut h in all_heuristics() {
            let plain = iterative::IterativeRun::new(&mut *h, &scenario)
                .execute()
                .unwrap();
            let mut h2 = nonmakespan::heuristics::by_name(h.name()).unwrap();
            let guarded = iterative::IterativeRun::new(&mut *h2, &scenario)
                .config(IterativeConfig {
                    seed_guard: true,
                    ..IterativeConfig::default()
                })
                .execute()
                .unwrap();
            assert!(
                guarded.final_makespan() <= plain.final_makespan().max(guarded.original_makespan()),
                "{} seed {seed}",
                h.name()
            );
            assert!(!guarded.makespan_increased(), "{} seed {seed}", h.name());
        }
    }
}

#[test]
fn production_pipeline_is_consistent() {
    let wave1 = workload(4);
    let wave2 = EtcSpec::braun(
        6,
        5,
        Consistency::SemiConsistent,
        Heterogeneity::Hi,
        Heterogeneity::Lo,
    )
    .generate(99);
    let scenario = ProductionScenario::new(wave1, wave2, Time::ZERO);

    for mut h in all_heuristics() {
        let mut tb = TieBreaker::Deterministic;
        let out = production::run(&scenario, &mut *h, &mut tb, IterativeConfig::default());
        // Availability vectors cover every machine.
        assert_eq!(out.original_availability.len(), 5, "{}", h.name());
        assert_eq!(out.iterative_availability.len(), 5, "{}", h.name());
        // Wave-2 summaries are meaningful: makespan >= mean completion > 0.
        for summary in [out.wave2_original, out.wave2_iterative] {
            assert!(summary.makespan >= summary.mean_completion, "{}", h.name());
            assert!(summary.mean_completion > Time::ZERO, "{}", h.name());
        }
    }
}

#[test]
fn twelve_braun_classes_have_expected_structure() {
    for spec in nonmakespan::etcgen::braun_classes(30, 6) {
        let etc = spec.generate(5);
        assert_eq!(etc.n_tasks(), 30);
        assert_eq!(etc.n_machines(), 6);
        // Smoke: every heuristic maps every class.
        let scenario = Scenario::with_zero_ready(etc);
        let mut h = nonmakespan::heuristics::MinMin;
        let outcome = iterative::IterativeRun::new(&mut h, &scenario)
            .execute()
            .unwrap();
        assert!(outcome.original_makespan() > Time::ZERO, "{}", spec.label());
    }
}
