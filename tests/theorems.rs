//! Property-based verification of the paper's formal results.
//!
//! * Theorem 3.2.1 — Min-Min + deterministic ties: every iteration of the
//!   iterative technique reproduces the original mapping.
//! * Theorem 3.3.1 — the same for MCT.
//! * §3.4 proof — the same for MET.
//! * §3.1 — Genitor with per-iteration seeding never increases makespan.
//! * Conclusion — the seeding guard makes *any* heuristic monotone.
//!
//! ETC values are drawn from a small integer set so that ties are common —
//! the theorems' interesting regime (with continuous values the deterministic
//! tie-breaker is never consulted and invariance is easy).

use nonmakespan::core::{iterative, EtcMatrix, IterativeConfig, Scenario, TieBreaker};
use nonmakespan::genitor::{Genitor, GenitorConfig};
use nonmakespan::heuristics::{all_heuristics, Mct, Met, MinMin};
use proptest::prelude::*;

/// Strategy: an ETC matrix with `t` tasks × `m` machines and small integer
/// values (ties abound).
fn etc_strategy() -> impl Strategy<Value = EtcMatrix> {
    (2usize..=5, 3usize..=12).prop_flat_map(|(m, t)| {
        proptest::collection::vec(1u32..=4, t * m).prop_map(move |values| {
            let flat: Vec<f64> = values.into_iter().map(f64::from).collect();
            EtcMatrix::new(t, m, &flat).expect("strategy produces valid values")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 3.2.1.
    #[test]
    fn minmin_deterministic_is_iteration_invariant(etc in etc_strategy()) {
        let scenario = Scenario::with_zero_ready(etc);
        let outcome = iterative::IterativeRun::new(&mut MinMin, &scenario)
            .execute()
            .unwrap();
        prop_assert!(outcome.mappings_identical());
        prop_assert!(!outcome.makespan_increased());
        // Invariance implies every machine keeps its completion time.
        for (_, orig, fin) in outcome.deltas() {
            prop_assert_eq!(orig, fin);
        }
    }

    /// Theorem 3.3.1.
    #[test]
    fn mct_deterministic_is_iteration_invariant(etc in etc_strategy()) {
        let scenario = Scenario::with_zero_ready(etc);
        let outcome = iterative::IterativeRun::new(&mut Mct, &scenario)
            .execute()
            .unwrap();
        prop_assert!(outcome.mappings_identical());
        prop_assert!(!outcome.makespan_increased());
    }

    /// §3.4 proof.
    #[test]
    fn met_deterministic_is_iteration_invariant(etc in etc_strategy()) {
        let scenario = Scenario::with_zero_ready(etc);
        let outcome = iterative::IterativeRun::new(&mut Met, &scenario)
            .execute()
            .unwrap();
        prop_assert!(outcome.mappings_identical());
        prop_assert!(!outcome.makespan_increased());
    }

    /// The theorems hold with nonzero initial ready times too (the proofs
    /// take them as zero "without loss of generality"; this is the check
    /// that the generality really was not lost). Note the iterative
    /// technique resets surviving machines to these *initial* ready times
    /// each round.
    #[test]
    fn invariance_survives_initial_ready_times(
        etc in etc_strategy(),
        ready_seed in 0u32..=3,
    ) {
        let m = etc.n_machines();
        let ready: Vec<f64> = (0..m).map(|i| ((i as u32 + ready_seed) % 4) as f64).collect();
        let scenario = Scenario::with_ready(etc, nonmakespan::core::ReadyTimes::from_values(&ready));
        for mut h in [
            Box::new(MinMin) as Box<dyn nonmakespan::core::Heuristic>,
            Box::new(Mct),
            Box::new(Met),
        ] {
            let outcome = iterative::IterativeRun::new(&mut *h, &scenario)
                .execute()
                .unwrap();
            prop_assert!(outcome.mappings_identical(), "{} changed", h.name());
        }
    }

    /// Conclusion: the seeding guard makes every heuristic monotone, even
    /// under adversarial random tie-breaking.
    #[test]
    fn seed_guard_is_monotone_for_all_heuristics(
        etc in etc_strategy(),
        seed in 0u64..=u64::MAX / 2,
    ) {
        let scenario = Scenario::with_zero_ready(etc);
        for mut h in all_heuristics() {
            let outcome = iterative::IterativeRun::new(&mut *h, &scenario)
                .tie_breaker(TieBreaker::random(seed))
                .config(IterativeConfig {
                    seed_guard: true,
                    ..IterativeConfig::default()
                })
                .execute()
                .unwrap();
            prop_assert!(
                !outcome.makespan_increased(),
                "{} increased despite the guard",
                h.name()
            );
        }
    }

    /// Without the guard, under random ties, outcomes are still *valid*
    /// (every machine accounted for, frozen machines keep their round
    /// completion) even when the makespan increases.
    #[test]
    fn unguarded_outcomes_are_well_formed(
        etc in etc_strategy(),
        seed in 0u64..=u64::MAX / 2,
    ) {
        let scenario = Scenario::with_zero_ready(etc.clone());
        for mut h in all_heuristics() {
            let outcome = iterative::IterativeRun::new(&mut *h, &scenario)
                .tie_breaker(TieBreaker::random(seed))
                .execute()
                .unwrap();
            prop_assert_eq!(outcome.final_finish.len(), etc.n_machines());
            prop_assert_eq!(outcome.rounds.last().unwrap().machines.len(), 1);
            // Rounds shrink by exactly one machine each time.
            for (i, round) in outcome.rounds.iter().enumerate() {
                prop_assert_eq!(round.machines.len(), etc.n_machines() - i);
            }
        }
    }
}

/// §3.1: Genitor with per-iteration seeding never increases makespan.
/// (Plain #[test] with a few seeds — the GA is too slow for 128 proptest
/// cases.)
#[test]
fn genitor_with_seeding_is_monotone() {
    for seed in 0..5u64 {
        let spec = nonmakespan::etcgen::EtcSpec::braun(
            16,
            4,
            nonmakespan::etcgen::Consistency::Inconsistent,
            nonmakespan::etcgen::Heterogeneity::Hi,
            nonmakespan::etcgen::Heterogeneity::Hi,
        );
        let scenario = Scenario::with_zero_ready(spec.generate(seed));
        let mut ga = Genitor::with_config(
            seed,
            GenitorConfig {
                pop_size: 30,
                max_steps: 1_500,
                stall_steps: 300,
                ..Default::default()
            },
        );
        let outcome = iterative::IterativeRun::new(&mut ga, &scenario)
            .execute()
            .unwrap();
        assert!(
            !outcome.makespan_increased(),
            "seed {seed}: Genitor increased makespan"
        );
        // Each round's makespan is bounded by the previous round's (the
        // seeded mapping is always available).
        for w in outcome.rounds.windows(2) {
            assert!(
                w[1].makespan <= w[0].makespan,
                "seed {seed}: round makespan grew {} -> {}",
                w[0].makespan,
                w[1].makespan
            );
        }
    }
}

/// The paper's counterexamples: SWA, KPB and Sufferage increase makespan
/// with deterministic ties; Min-Min, MCT and MET do so under the scripted
/// random ties.
#[test]
fn paper_counterexamples_hold() {
    for example in nonmakespan::paper::all_examples() {
        let outcome = example.run();
        assert!(
            outcome.makespan_increased(),
            "{}: expected a makespan increase",
            example.id
        );
    }
}
