//! End-to-end CLI workflow: generate → save → map → iterate → examples,
//! exactly as a user would drive the `nonmakespan` binary.

use nonmakespan::cli::{execute, parse, Command};

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("nonmakespan_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn full_generate_map_iterate_workflow() {
    let dir = tmp_dir();
    let csv_path = dir.join("workload.csv");

    // 1. Generate a workload.
    let csv = execute(Command::Generate {
        tasks: 16,
        machines: 4,
        class: "i-hihi".into(),
        seed: 3,
    })
    .expect("generate");
    std::fs::write(&csv_path, &csv).expect("write workload");

    // 2. Parse the `map` command against the file (exercises file I/O).
    let args: Vec<String> = [
        "map",
        "--etc",
        csv_path.to_str().unwrap(),
        "--heuristic",
        "min-min",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let cmd = parse(&args).expect("parse map");
    let out = execute(cmd).expect("map");
    assert!(out.contains("makespan:"), "{out}");
    assert!(out.contains("t15"), "all 16 tasks mapped: {out}");

    // 3. Iterate with the guard.
    let args: Vec<String> = [
        "iterate",
        "--etc",
        csv_path.to_str().unwrap(),
        "--heuristic",
        "sufferage",
        "--guard",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let cmd = parse(&args).expect("parse iterate");
    let out = execute(cmd).expect("iterate");
    assert!(out.contains("round 0"), "{out}");
    assert!(out.contains("round 3"), "4 machines -> 4 rounds: {out}");
    // Guarded runs never report an increase.
    assert!(out.contains("(ok)"), "{out}");

    // 4. The same workflow through a search heuristic.
    let args: Vec<String> = [
        "iterate",
        "--etc",
        csv_path.to_str().unwrap(),
        "--heuristic",
        "tabu",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let out = execute(parse(&args).expect("parse")).expect("tabu iterate");
    assert!(out.contains("makespan:"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn examples_subcommand_round_trips_through_parse() {
    let args = vec!["examples".to_string(), "sufferage".to_string()];
    let out = execute(parse(&args).expect("parse")).expect("examples");
    assert!(out.contains("sufferage"), "{out}");
    assert!(out.contains("10.5"), "{out}");
    assert!(out.contains("yes"), "verified: {out}");
}

#[test]
fn deterministic_and_random_runs_both_complete() {
    let dir = tmp_dir();
    let csv_path = dir.join("tie_rich.csv");
    // Hand-written tie-rich workload.
    std::fs::write(&csv_path, "3,3\n3,3\n3,3\n2,2\n").expect("write");

    for extra in [vec![], vec!["--random-ties".to_string(), "5".to_string()]] {
        let mut args: Vec<String> = [
            "iterate",
            "--etc",
            csv_path.to_str().unwrap(),
            "--heuristic",
            "mct",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        args.extend(extra);
        let out = execute(parse(&args).expect("parse")).expect("iterate");
        assert!(out.contains("original mapping:"), "{out}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
