//! Failure injection: a machine dies mid-schedule; the recovery machinery
//! must keep the accounting airtight no matter which heuristic produced
//! the schedule, which machine dies, or when.

use nonmakespan::core::{TaskId, TieBreaker, Time};
use nonmakespan::heuristics::all_heuristics;
use nonmakespan::prelude::*;
use nonmakespan::sim::fail_and_recover;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_task_is_accounted_for_exactly_once(
        seed in 0u64..500,
        failed_idx in 0usize..4,
        at_frac in 0.0f64..1.2,
        heuristic_idx in 0usize..10,
    ) {
        let spec = EtcSpec::braun(
            14,
            4,
            Consistency::Inconsistent,
            Heterogeneity::Hi,
            Heterogeneity::Lo,
        );
        let scenario = Scenario::with_zero_ready(spec.generate(seed));
        let machines = scenario.etc.machine_vec();
        let mut heuristics = all_heuristics();
        let n_heuristics = heuristics.len();
        let h = &mut heuristics[heuristic_idx % n_heuristics];
        let mut tb = TieBreaker::Deterministic;
        let owned = scenario.full_instance();
        let mapping = h.map(&owned.as_instance(&scenario), &mut tb);

        let makespan = mapping.makespan(&scenario.etc, &scenario.initial_ready, &machines);
        let at = Time::new(makespan.get() * at_frac);
        let failed = machines[failed_idx % machines.len()];

        let mut tb = TieBreaker::Deterministic;
        let out = fail_and_recover(
            &mapping,
            &scenario.etc,
            &scenario.initial_ready,
            &machines,
            failed,
            at,
            &mut tb,
        );

        // Exactly-once coverage of the task set.
        let mut seen: Vec<TaskId> = out
            .unaffected
            .iter()
            .map(|&(t, _)| t)
            .chain(out.remapped.iter().map(|&(t, _, _)| t))
            .collect();
        seen.sort_unstable();
        let mut expected = scenario.etc.task_vec();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected, "{}", h.name());

        // Remapped tasks land on survivors, never before the failure.
        for &(task, machine, done) in &out.remapped {
            prop_assert_ne!(machine, failed, "{} on failed machine", task);
            prop_assert!(done >= at, "{} finished at {done} before failure {at}", task);
        }

        // Recovery makespan bounds: at least the unaffected work, and at
        // least the original makespan when nothing was lost.
        if out.remapped.is_empty() {
            prop_assert_eq!(out.recovery_makespan, makespan);
        } else {
            prop_assert!(out.recovery_makespan >= at);
        }
    }

    #[test]
    fn earlier_failures_never_shorten_recovery(
        seed in 0u64..200,
    ) {
        // Failing earlier loses at least as much work, so the recovery
        // makespan is monotonically non-increasing in the failure time for
        // a fixed schedule and failed machine... (not a theorem for
        // arbitrary MCT remapping order, but holds for the two-point
        // comparison "before anything ran" vs "after everything ran").
        let spec = EtcSpec::braun(
            10,
            3,
            Consistency::Inconsistent,
            Heterogeneity::Hi,
            Heterogeneity::Hi,
        );
        let scenario = Scenario::with_zero_ready(spec.generate(seed));
        let machines = scenario.etc.machine_vec();
        let mut h = MinMin;
        let mut tb = TieBreaker::Deterministic;
        let owned = scenario.full_instance();
        let mapping = h.map(&owned.as_instance(&scenario), &mut tb);
        let makespan = mapping.makespan(&scenario.etc, &scenario.initial_ready, &machines);

        let run_at = |at: Time| {
            let mut tb = TieBreaker::Deterministic;
            fail_and_recover(
                &mapping,
                &scenario.etc,
                &scenario.initial_ready,
                &machines,
                machines[0],
                at,
                &mut tb,
            )
        };
        let immediate = run_at(Time::ZERO);
        let never = run_at(makespan + Time::new(1.0));
        prop_assert!(immediate.recovery_makespan >= never.recovery_makespan);
        prop_assert_eq!(never.recovery_makespan, makespan);
    }
}
