//! The experiment index E1–E17: every table and figure of the paper is
//! regenerated and checked against the surviving numbers, through the
//! umbrella crate's public API (what a downstream user would call).

use nonmakespan::paper::{all_examples, example_by_id, verify_example};
use nonmakespan::paper::{figures, tables};

#[test]
fn e1_to_e17_all_verified() {
    let examples = all_examples();
    assert_eq!(examples.len(), 6, "six worked examples");
    for example in &examples {
        let report = verify_example(example);
        assert!(
            report.all_ok(),
            "{}: {:?}",
            example.id,
            report
                .checks
                .iter()
                .filter(|(_, ok)| !ok)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_paper_table_renders() {
    // ETC tables (1, 4, 9, 12, 15).
    for (id, label) in [
        ("minmin", "Table 1"),
        ("mct", "Table 4"),
        ("swa", "Table 9"),
        ("kpb", "Table 12"),
        ("sufferage", "Table 15"),
    ] {
        let e = example_by_id(id).unwrap();
        let rendered = tables::etc_table(&e, label).render();
        assert!(rendered.starts_with(label), "{rendered}");
        assert!(rendered.lines().count() >= e.etc.n_tasks() + 2);
    }

    // Allocation tables (2, 3, 5, 6, 7, 8) for the random-tie examples.
    for id in ["minmin", "mct", "met"] {
        let e = example_by_id(id).unwrap();
        let outcome = e.run();
        let orig = tables::allocation_table(&e, &outcome.rounds[0], "orig");
        let iter = tables::allocation_table(&e, &outcome.rounds[1], "iter");
        assert_eq!(orig.n_rows(), outcome.rounds[0].tasks.len(), "{id}");
        assert_eq!(iter.n_rows(), outcome.rounds[1].tasks.len(), "{id}");
    }

    // SWA tables (10, 11) carry the paper's exact BI column.
    let e = example_by_id("swa").unwrap();
    let outcome = e.run();
    let t10 = tables::swa_table(&e, &outcome.rounds[0], "Table 10").render();
    for needle in ["x", "0", "1/3", "2/3", "MCT", "MET"] {
        assert!(t10.contains(needle), "Table 10 missing {needle}:\n{t10}");
    }
    let t11 = tables::swa_table(&e, &outcome.rounds[1], "Table 11").render();
    for needle in ["1/2", "4/13", "6.5"] {
        assert!(t11.contains(needle), "Table 11 missing {needle}:\n{t11}");
    }

    // KPB tables (13, 14).
    let e = example_by_id("kpb").unwrap();
    let outcome = e.run();
    let t13 = tables::kpb_table(&e, &outcome.rounds[0], "Table 13").render();
    assert!(t13.contains("5.5"), "{t13}");
    let t14 = tables::kpb_table(&e, &outcome.rounds[1], "Table 14").render();
    assert!(t14.contains('7'), "{t14}");

    // Sufferage tables (16, 17).
    let e = example_by_id("sufferage").unwrap();
    let outcome = e.run();
    let t16 = tables::sufferage_table(&e, &outcome.rounds[0], "Table 16").render();
    assert!(t16.contains("10"), "{t16}");
    let t17 = tables::sufferage_table(&e, &outcome.rounds[1], "Table 17").render();
    assert!(t17.contains("10.5") || t17.contains("8.5"), "{t17}");
}

#[test]
fn every_paper_figure_renders() {
    // Figures 3/4, 6/7, 9/10, 11/12, 15/16, 18/19: one pair per example.
    for example in all_examples() {
        let (orig, iter) = figures::figure_pair(&example);
        assert!(orig.len() > 40, "{}: figure too small:\n{orig}", example.id);
        assert!(iter.len() > 20, "{}: figure too small:\n{iter}", example.id);
    }
}

#[test]
fn makespan_values_match_the_paper_exactly() {
    // The headline numbers of each example, spelled out.
    let cases = [
        ("minmin", 5.0, 6.0),
        ("mct", 4.0, 5.0),
        ("met", 4.0, 5.0),
        ("swa", 6.0, 6.5),
        ("kpb", 6.0, 7.0),
        ("sufferage", 10.0, 10.5),
    ];
    for (id, orig, fin) in cases {
        let outcome = example_by_id(id).unwrap().run();
        assert_eq!(outcome.original_makespan().get(), orig, "{id} original");
        assert_eq!(outcome.final_makespan().get(), fin, "{id} final");
    }
}
